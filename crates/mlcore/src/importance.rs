//! Permutation importance (Breiman 2001, \[10\] in the paper).
//!
//! The importance of a feature is the drop in model accuracy when that
//! feature's values are shuffled across the evaluation set, averaged over
//! repeats — the metric behind the paper's Fig. 9 (51 launch attributes)
//! and Table 5 (9 transition attributes).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::Dataset;
use crate::metrics::accuracy;
use crate::Classifier;

/// Computes permutation importance of every feature.
///
/// Returns one importance per feature: `baseline_accuracy − mean shuffled
/// accuracy` over `repeats` shuffles. Values near zero (or slightly
/// negative, clamped to 0) mean the model does not rely on the feature.
pub fn permutation_importance<C: Classifier>(
    model: &C,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(repeats > 0, "need at least one repeat");
    let baseline = accuracy(&data.y, &model.predict_batch(&data.x));
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.len();
    (0..data.n_features())
        .map(|f| {
            let mut drop_sum = 0.0;
            for _ in 0..repeats {
                // Shuffle column f.
                let mut perm: Vec<usize> = (0..n).collect();
                perm.shuffle(&mut rng);
                let shuffled: Vec<Vec<f64>> = (0..n)
                    .map(|i| {
                        let mut row = data.x[i].clone();
                        row[f] = data.x[perm[i]][f];
                        row
                    })
                    .collect();
                let acc = accuracy(&data.y, &model.predict_batch(&shuffled));
                drop_sum += baseline - acc;
            }
            (drop_sum / repeats as f64).max(0.0)
        })
        .collect()
}

/// Permutation importance of feature *sets*: all features of a set are
/// shuffled together (with the same row permutation, preserving their
/// joint distribution). This breaks the redundancy masking that makes
/// individual importances of correlated features vanish.
pub fn permutation_importance_grouped<C: Classifier>(
    model: &C,
    data: &Dataset,
    groups: &[Vec<usize>],
    repeats: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(repeats > 0, "need at least one repeat");
    let baseline = accuracy(&data.y, &model.predict_batch(&data.x));
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.len();
    groups
        .iter()
        .map(|features| {
            let mut drop_sum = 0.0;
            for _ in 0..repeats {
                let mut perm: Vec<usize> = (0..n).collect();
                perm.shuffle(&mut rng);
                let shuffled: Vec<Vec<f64>> = (0..n)
                    .map(|i| {
                        let mut row = data.x[i].clone();
                        for &f in features {
                            row[f] = data.x[perm[i]][f];
                        }
                        row
                    })
                    .collect();
                let acc = accuracy(&data.y, &model.predict_batch(&shuffled));
                drop_sum += baseline - acc;
            }
            (drop_sum / repeats as f64).max(0.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{RandomForest, RandomForestConfig};
    use rand::Rng;

    /// Class depends only on feature 0; feature 1 is pure noise.
    fn informative_vs_noise(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c = rng.gen_range(0..2usize);
            x.push(vec![
                c as f64 * 4.0 + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(c);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn informative_feature_dominates() {
        let train = informative_vs_noise(1, 300);
        let test = informative_vs_noise(2, 150);
        let f = RandomForest::fit(
            &train,
            &RandomForestConfig {
                n_trees: 30,
                ..Default::default()
            },
        );
        let imp = permutation_importance(&f, &test, 5, 9);
        assert_eq!(imp.len(), 2);
        assert!(imp[0] > 0.3, "informative importance {}", imp[0]);
        assert!(imp[1] < 0.05, "noise importance {}", imp[1]);
        assert!(imp.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn grouped_importance_breaks_redundancy_masking() {
        // Three perfectly redundant informative features + one noise
        // feature: individually each informative feature looks weak (the
        // others cover for it), jointly they dominate. Three copies (not
        // two) keep the forest's root-split votes spread thin enough that
        // no single feature can hold a tree majority, which would let one
        // shuffled column flip the ensemble vote on its own.
        let mut rng = StdRng::seed_from_u64(8);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..400 {
            let c = rng.gen_range(0..2usize);
            let v = c as f64 * 4.0 + rng.gen_range(-1.0..1.0);
            x.push(vec![
                v,
                v + rng.gen_range(-0.01..0.01),
                v + rng.gen_range(-0.01..0.01),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(c);
        }
        let d = Dataset::new(x, y);
        let f = RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 40,
                ..Default::default()
            },
        );
        let single = permutation_importance(&f, &d, 5, 3);
        let grouped = permutation_importance_grouped(&f, &d, &[vec![0, 1, 2], vec![3]], 5, 3);
        for (i, &s) in single.iter().take(3).enumerate() {
            assert!(
                grouped[0] > s + 0.1,
                "joint {} vs single[{i}] {s}",
                grouped[0]
            );
        }
        assert!(grouped[1] < 0.05);
    }

    #[test]
    fn importance_is_deterministic() {
        let d = informative_vs_noise(3, 100);
        let f = RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 10,
                ..Default::default()
            },
        );
        let a = permutation_importance(&f, &d, 3, 42);
        let b = permutation_importance(&f, &d, 3, 42);
        assert_eq!(a, b);
    }
}
