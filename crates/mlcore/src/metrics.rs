//! Classification metrics: accuracy, confusion matrices, per-class scores.

use serde::{Deserialize, Serialize};

/// Fraction of predictions matching the truth (0 for empty input).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "truth/pred length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    truth.iter().zip(pred).filter(|(t, p)| t == p).count() as f64 / truth.len() as f64
}

/// A confusion matrix: `m[truth][pred]` counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// An empty matrix ready for incremental [`record`](Self::record)
    /// calls — the streaming form of [`from_pairs`](Self::from_pairs).
    pub fn new(n_classes: usize) -> ConfusionMatrix {
        ConfusionMatrix {
            n_classes,
            counts: vec![vec![0usize; n_classes]; n_classes],
        }
    }

    /// Builds the matrix from parallel truth/prediction slices.
    ///
    /// # Panics
    /// Panics on length mismatch or labels ≥ `n_classes`.
    pub fn from_pairs(n_classes: usize, truth: &[usize], pred: &[usize]) -> ConfusionMatrix {
        assert_eq!(truth.len(), pred.len(), "truth/pred length mismatch");
        let mut m = ConfusionMatrix::new(n_classes);
        for (&t, &p) in truth.iter().zip(pred) {
            m.record(t, p);
        }
        m
    }

    /// Counts one (truth, prediction) pair.
    ///
    /// # Panics
    /// Panics when either label is ≥ `n_classes`.
    pub fn record(&mut self, truth: usize, pred: usize) {
        self.counts[truth][pred] += 1;
    }

    /// Removes one previously recorded (truth, prediction) pair — the
    /// sliding-window companion of [`record`](Self::record).
    ///
    /// # Panics
    /// Panics when the pair was never recorded (its cell is 0) or either
    /// label is ≥ `n_classes`.
    pub fn forget(&mut self, truth: usize, pred: usize) {
        let cell = &mut self.counts[truth][pred];
        assert!(*cell > 0, "forgetting a pair that was never recorded");
        *cell -= 1;
    }

    /// Count of samples with truth `t` predicted as `p`.
    pub fn get(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.n_classes).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Recall of a class (a.k.a. the paper's per-class "accuracy": the
    /// fraction of that class's sessions classified correctly). 0 when the
    /// class has no samples.
    pub fn recall(&self, class: usize) -> f64 {
        let row: usize = self.counts[class].iter().sum();
        if row == 0 {
            0.0
        } else {
            self.counts[class][class] as f64 / row as f64
        }
    }

    /// Precision of a class; 0 when it was never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let col: usize = (0..self.n_classes).map(|t| self.counts[t][class]).sum();
        if col == 0 {
            0.0
        } else {
            self.counts[class][class] as f64 / col as f64
        }
    }

    /// F1 score of a class (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class recalls (macro recall).
    pub fn macro_recall(&self) -> f64 {
        let with_samples: Vec<usize> = (0..self.n_classes)
            .filter(|&c| self.counts[c].iter().sum::<usize>() > 0)
            .collect();
        if with_samples.is_empty() {
            return 0.0;
        }
        with_samples.iter().map(|&c| self.recall(c)).sum::<f64>() / with_samples.len() as f64
    }

    /// Renders the matrix as an aligned text table with the given class
    /// names (truncated/padded to the class count).
    pub fn render(&self, class_names: &[&str]) -> String {
        let name = |i: usize| class_names.get(i).copied().unwrap_or("?");
        let width = (0..self.n_classes)
            .map(|i| name(i).len())
            .max()
            .unwrap_or(1)
            .max(6);
        let mut out = format!("{:>width$} |", "t\\p");
        for p in 0..self.n_classes {
            out += &format!(" {:>width$}", name(p));
        }
        out += "\n";
        for t in 0..self.n_classes {
            out += &format!("{:>width$} |", name(t));
            for p in 0..self.n_classes {
                out += &format!(" {:>width$}", self.counts[t][p]);
            }
            out += "\n";
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[1, 2, 3, 4], &[1, 0, 3, 0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_counts() {
        let truth = [0, 0, 1, 1, 2, 2];
        let pred = [0, 1, 1, 1, 2, 0];
        let m = ConfusionMatrix::from_pairs(3, &truth, &pred);
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(1, 1), 2);
        assert_eq!(m.get(2, 0), 1);
        assert_eq!(m.total(), 6);
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_scores() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 1, 1];
        let m = ConfusionMatrix::from_pairs(2, &truth, &pred);
        assert_eq!(m.recall(0), 0.5);
        assert_eq!(m.recall(1), 1.0);
        assert_eq!(m.precision(0), 1.0);
        assert!((m.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        let f1 = m.f1(1);
        assert!((f1 - 0.8).abs() < 1e-12);
        assert!((m.macro_recall() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_class_scores_are_zero() {
        let m = ConfusionMatrix::from_pairs(3, &[0], &[0]);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
        // Macro recall ignores classes without samples.
        assert_eq!(m.macro_recall(), 1.0);
    }

    #[test]
    fn render_contains_counts() {
        let m = ConfusionMatrix::from_pairs(2, &[0, 1, 1], &[0, 1, 0]);
        let s = m.render(&["cat", "dog"]);
        assert!(s.contains("cat"));
        assert!(s.contains("dog"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_pairs_length_mismatch_panics() {
        let _ = ConfusionMatrix::from_pairs(2, &[0, 1], &[0]);
    }

    #[test]
    #[should_panic]
    fn from_pairs_label_out_of_range_panics() {
        let _ = ConfusionMatrix::from_pairs(2, &[2], &[0]);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let m = ConfusionMatrix::from_pairs(3, &[], &[]);
        assert_eq!(m.total(), 0);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.macro_recall(), 0.0);
        for c in 0..3 {
            assert_eq!(m.recall(c), 0.0);
            assert_eq!(m.precision(c), 0.0);
            assert_eq!(m.f1(c), 0.0);
        }
    }

    #[test]
    fn matrix_accuracy_matches_free_function() {
        let truth = [0, 1, 2, 1, 0, 2, 2];
        let pred = [0, 1, 1, 1, 2, 2, 0];
        let m = ConfusionMatrix::from_pairs(3, &truth, &pred);
        assert!((m.accuracy() - accuracy(&truth, &pred)).abs() < 1e-12);
        assert_eq!(m.total(), truth.len());
    }

    #[test]
    fn macro_recall_weights_classes_equally() {
        // Class 0: 9/10 right, class 1: 0/1 right. Overall accuracy is
        // dominated by class 0; macro recall is not.
        let truth: Vec<usize> = std::iter::repeat_n(0, 10).chain([1]).collect();
        let mut pred = truth.clone();
        pred[0] = 1; // one class-0 miss
        pred[10] = 0; // the only class-1 sample misses
        let m = ConfusionMatrix::from_pairs(2, &truth, &pred);
        assert!((m.accuracy() - 9.0 / 11.0).abs() < 1e-12);
        assert!((m.macro_recall() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn render_falls_back_to_placeholder_names() {
        let m = ConfusionMatrix::from_pairs(3, &[0, 1, 2], &[0, 1, 2]);
        let s = m.render(&["only-one"]);
        assert!(s.contains("only-one"));
        assert!(s.contains('?'));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn single_class_batch_scores() {
        // Every sample is one class, all predicted right: that class has
        // perfect recall/precision, every other class scores zero without
        // polluting accuracy or macro recall.
        let m = ConfusionMatrix::from_pairs(4, &[2, 2, 2, 2], &[2, 2, 2, 2]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.recall(2), 1.0);
        assert_eq!(m.precision(2), 1.0);
        assert_eq!(m.macro_recall(), 1.0, "absent classes are ignored");
        for c in [0, 1, 3] {
            assert_eq!(m.recall(c), 0.0);
            assert_eq!(m.precision(c), 0.0);
        }
        // Same batch entirely misclassified into an absent class: the
        // absent class gets predictions (precision 0 via the diagonal)
        // while the true class keeps recall 0.
        let wrong = ConfusionMatrix::from_pairs(4, &[2, 2, 2], &[0, 0, 0]);
        assert_eq!(wrong.accuracy(), 0.0);
        assert_eq!(wrong.recall(2), 0.0);
        assert_eq!(
            wrong.precision(0),
            0.0,
            "no class-0 truth to be right about"
        );
        assert_eq!(wrong.macro_recall(), 0.0);
    }

    #[test]
    fn absent_class_recall_does_not_nan() {
        // A class that never appears in truth must score 0, not NaN, for
        // every derived metric — the streaming gauges publish these raw.
        let m = ConfusionMatrix::from_pairs(3, &[0, 1, 0, 1], &[0, 1, 1, 1]);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
        assert!(m.recall(2).is_finite() && m.precision(2).is_finite());
    }

    #[test]
    fn incremental_matches_batch() {
        // The streaming path folds record() one pair at a time; it must
        // land on exactly the matrix from_pairs builds in one shot.
        let truth = [0, 3, 1, 1, 2, 0, 3, 3, 2, 1, 0, 2];
        let pred = [0, 3, 1, 2, 2, 1, 3, 0, 2, 1, 0, 2];
        let batch = ConfusionMatrix::from_pairs(4, &truth, &pred);
        let mut streaming = ConfusionMatrix::new(4);
        for (&t, &p) in truth.iter().zip(&pred) {
            streaming.record(t, p);
        }
        assert_eq!(streaming, batch);
        assert_eq!(streaming.accuracy(), batch.accuracy());
        assert_eq!(streaming.macro_recall(), batch.macro_recall());
    }

    #[test]
    fn sliding_window_forget_equals_suffix_rebuild() {
        // record() everything then forget() the prefix: identical to
        // building from the suffix alone — the invariant the rolling
        // quality windows rely on.
        let truth = [0, 1, 2, 0, 1, 2, 2, 1, 0];
        let pred = [0, 1, 0, 0, 2, 2, 2, 1, 1];
        let cut = 4;
        let mut rolling = ConfusionMatrix::new(3);
        for (&t, &p) in truth.iter().zip(&pred) {
            rolling.record(t, p);
        }
        for (&t, &p) in truth[..cut].iter().zip(&pred[..cut]) {
            rolling.forget(t, p);
        }
        let suffix = ConfusionMatrix::from_pairs(3, &truth[cut..], &pred[cut..]);
        assert_eq!(rolling, suffix);
        assert_eq!(rolling.total(), truth.len() - cut);
    }

    #[test]
    #[should_panic(expected = "never recorded")]
    fn forget_of_unrecorded_pair_panics() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 0);
        m.forget(0, 1);
    }

    #[test]
    fn serde_roundtrip_preserves_counts() {
        let m = ConfusionMatrix::from_pairs(3, &[0, 0, 1, 2, 2], &[0, 1, 1, 2, 0]);
        let back: ConfusionMatrix =
            serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.get(2, 0), 1);
    }
}
