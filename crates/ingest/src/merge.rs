//! K-way merge of timestamped tap feeds into one globally ordered stream.
//!
//! An ISP aggregation point sees many links at once: several NICs,
//! several pcaps from different vantage points, several simulated taps —
//! each feed internally (mostly) time-ordered, each on its own clock.
//! This module fuses N such sources into the single ordered stream the
//! paced replay engine and the sharded monitor expect:
//!
//! * **Per-source clock skew** — every source carries a signed
//!   [`SkewMicros`] offset applied to its timestamps before merging, so
//!   vantage points whose capture clocks disagree land on one shared
//!   axis ([`shift_micros`]).
//! * **Binary heap merge** — a min-heap over the per-source heads keyed
//!   by `(ts, source index, arrival seq)`. For sorted inputs the output
//!   is globally sorted, and records with identical timestamps come out
//!   **stable by source index** (then by within-source arrival order).
//! * **Bounded reordering tolerance** — real capture feeds are only
//!   *mostly* sorted (multi-queue NICs reorder within a small window).
//!   Each source runs through a lookahead buffer (itself a min-heap)
//!   that holds records until the source has been seen
//!   [`MergeConfig::tolerance_us`] past them, fixing any local disorder
//!   within that window. A record arriving *later* than the tolerance
//!   allows (more than `tolerance_us` behind its source's newest seen
//!   timestamp) cannot be guaranteed a sorted slot without unbounded
//!   buffering; it is still delivered — best-effort re-sorted, **never
//!   silently reordered or dropped** — and counted in the labeled
//!   `cgc_ingest_merge_late_total{source=}` family (and in
//!   [`MergeStats::late`]). Any output-order violation the merge can
//!   produce comes from exactly such a record, so `late == 0` certifies
//!   a perfectly ordered output.
//!
//! The invariant proven by `tests/e2e_merge.rs`: splitting one recorded
//! feed into M interleaved sources and merging them back is the
//! *identity* — session reports and journal timelines stay byte-identical
//! to the single-feed replay, with zero late records.
//!
//! ```
//! use cgc_ingest::merge::{merge_sources, MergeConfig, MergeSource};
//!
//! let tuple = nettrace::FiveTuple::udp_v4([10, 0, 0, 1], 49003, [100, 64, 1, 1], 50_000);
//! // Two taps; tap "b" stamped by a clock running 10 µs behind.
//! let a = MergeSource::new("a", vec![(0, tuple, 100), (20, tuple, 100)]);
//! let b = MergeSource::with_offset("b", 10, vec![(0, tuple, 100), (5, tuple, 100)]);
//! let (merged, stats) = merge_sources(vec![a, b], &MergeConfig::default(), None);
//! let ts: Vec<u64> = merged.iter().map(|r| r.0).collect();
//! assert_eq!(ts, [0, 10, 15, 20], "b's records shifted onto the shared axis");
//! assert_eq!(stats.late_total(), 0);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use cgc_core::shard::TapRecord;
use cgc_obs::{Counter, Registry};
use nettrace::clock::{shift_micros, SkewMicros};
use nettrace::units::Micros;

use crate::metrics::MergeMetrics;

/// One timestamped feed entering the merge: a label (used as the
/// `source` metric label), a signed clock-skew offset, and the records
/// themselves in capture-arrival order.
#[derive(Debug, Clone)]
pub struct MergeSource {
    /// Stable name used as the `source` label of the merge metric
    /// families (e.g. the pcap path or NIC name).
    pub label: String,
    /// Signed clock-skew correction applied to every record timestamp
    /// before merging, µs.
    pub offset_us: SkewMicros,
    /// The feed, in capture-arrival order (expected mostly sorted).
    pub records: Vec<TapRecord>,
}

impl MergeSource {
    /// A source on the shared clock axis (zero skew).
    pub fn new(label: impl Into<String>, records: Vec<TapRecord>) -> Self {
        MergeSource {
            label: label.into(),
            offset_us: 0,
            records,
        }
    }

    /// A source whose capture clock needs an `offset_us` correction.
    pub fn with_offset(
        label: impl Into<String>,
        offset_us: SkewMicros,
        records: Vec<TapRecord>,
    ) -> Self {
        MergeSource {
            label: label.into(),
            offset_us,
            records,
        }
    }
}

/// Reordering bounds of the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeConfig {
    /// How far (µs) a record may arrive behind newer records of the
    /// *same source* and still be re-sorted into place. Records later
    /// than this are released immediately and counted late.
    pub tolerance_us: Micros,
    /// Hard cap on per-source lookahead buffering (records); protects
    /// memory against a source that stalls its own timeline. When the
    /// cap is hit the oldest buffered record is released even if the
    /// tolerance window has not elapsed.
    pub lookahead_cap: usize,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            // One scheduling quantum of NIC/queue reordering; sorted
            // feeds (pcaps, simulated taps) never get near it.
            tolerance_us: 1_000,
            lookahead_cap: 65_536,
        }
    }
}

/// What one merge produced: per-source release/late accounting, in
/// source order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Source labels, in input order (parallel to the other vectors).
    pub labels: Vec<String>,
    /// Records merged per source.
    pub merged: Vec<u64>,
    /// Records per source that arrived beyond the reordering tolerance
    /// (released out of order, never dropped).
    pub late: Vec<u64>,
}

impl MergeStats {
    /// Total records across sources.
    pub fn merged_total(&self) -> u64 {
        self.merged.iter().sum()
    }

    /// Total late-beyond-tolerance records across sources.
    pub fn late_total(&self) -> u64 {
        self.late.iter().sum()
    }
}

/// A record waiting in a per-source lookahead buffer, ordered by
/// `(ts, seq)` so equal timestamps keep their arrival order.
struct Buffered {
    ts: Micros,
    seq: u64,
    record: TapRecord,
}

impl PartialEq for Buffered {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.seq == other.seq
    }
}
impl Eq for Buffered {}
impl PartialOrd for Buffered {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Buffered {
    /// Reversed so `BinaryHeap` (a max-heap) pops the smallest first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.ts, other.seq).cmp(&(self.ts, self.seq))
    }
}

/// One source mid-merge: the not-yet-buffered remainder of the feed, a
/// lookahead min-heap absorbing local disorder, and lateness bookkeeping.
struct SourceState {
    rest: std::vec::IntoIter<TapRecord>,
    offset: SkewMicros,
    buf: BinaryHeap<Buffered>,
    /// Newest (offset-corrected) timestamp pushed into the buffer — the
    /// source's read frontier; `frontier - tolerance` is what the buffer
    /// has provably seen past.
    frontier: Micros,
    /// Arrival counter feeding the stable `seq` tie-breaker.
    next_seq: u64,
    /// Labeled `cgc_ingest_merge_late_total{source=}` handle, when the
    /// merge was built with a registry.
    late_counter: Option<Arc<Counter>>,
    merged: u64,
    late: u64,
}

impl SourceState {
    fn new(source: MergeSource, late_counter: Option<Arc<Counter>>) -> Self {
        SourceState {
            rest: source.records.into_iter(),
            offset: source.offset_us,
            buf: BinaryHeap::new(),
            frontier: 0,
            next_seq: 0,
            late_counter,
            merged: 0,
            late: 0,
        }
    }

    /// Fills the lookahead buffer until its oldest record is *mature* —
    /// the source has been read `tolerance` past it (so nothing still to
    /// come, short of a counted-late record, could sort before it), the
    /// feed is exhausted, or the lookahead cap is hit.
    ///
    /// Lateness is decided here, at arrival: a record more than
    /// `tolerance` behind the source frontier is counted (and still
    /// buffered, so it sorts as early as it still can — delivered, never
    /// dropped).
    fn fill(&mut self, cfg: &MergeConfig) {
        loop {
            let mature = match self.buf.peek() {
                None => false,
                Some(oldest) => {
                    oldest.ts.saturating_add(cfg.tolerance_us) <= self.frontier
                        || self.buf.len() >= cfg.lookahead_cap
                }
            };
            if mature {
                return;
            }
            match self.rest.next() {
                Some((ts, tuple, len)) => {
                    let ts = shift_micros(ts, self.offset);
                    if ts < self.frontier.saturating_sub(cfg.tolerance_us) {
                        self.late += 1;
                        if let Some(c) = &self.late_counter {
                            c.inc();
                        }
                    }
                    self.frontier = self.frontier.max(ts);
                    self.buf.push(Buffered {
                        ts,
                        seq: self.next_seq,
                        record: (ts, tuple, len),
                    });
                    self.next_seq += 1;
                }
                None => return, // exhausted: whatever is buffered is final
            }
        }
    }

    /// The timestamp the merge heap should key this source by.
    fn head_ts(&self) -> Option<Micros> {
        self.buf.peek().map(|b| b.ts)
    }

    /// Releases the oldest buffered record.
    fn release(&mut self) -> TapRecord {
        let b = self.buf.pop().expect("release on a non-empty buffer");
        self.merged += 1;
        b.record
    }
}

/// Merge-heap key: smallest `(ts, source)` first, stable by source index
/// for identical timestamps.
#[derive(PartialEq, Eq)]
struct Head {
    ts: Micros,
    source: usize,
}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.ts, other.source).cmp(&(self.ts, self.source))
    }
}

/// Streaming k-way merge over [`MergeSource`]s.
///
/// Yields the fused, offset-corrected record stream; consume it directly
/// or via [`merge_sources`] (which also materializes stats). Late
/// records are yielded in arrival position (never reordered further,
/// never dropped) and counted — through [`MergeMetrics`] when metrics
/// are attached, and in the per-source totals either way.
pub struct KWayMerge {
    labels: Vec<String>,
    sources: Vec<SourceState>,
    heap: BinaryHeap<Head>,
    cfg: MergeConfig,
    metrics: Option<MergeMetrics>,
}

impl KWayMerge {
    /// Builds the merge; with a `registry`, per-source
    /// `cgc_ingest_merge_records_total{source=}` /
    /// `cgc_ingest_merge_late_total{source=}` counters ride along.
    pub fn new(sources: Vec<MergeSource>, cfg: MergeConfig, registry: Option<&Registry>) -> Self {
        let labels: Vec<String> = sources.iter().map(|s| s.label.clone()).collect();
        let metrics = registry.map(|r| MergeMetrics::register(r, &labels));
        let mut states: Vec<SourceState> = sources
            .into_iter()
            .enumerate()
            .map(|(i, s)| SourceState::new(s, metrics.as_ref().map(|m| Arc::clone(&m.late[i]))))
            .collect();
        let mut heap = BinaryHeap::with_capacity(states.len());
        for (i, s) in states.iter_mut().enumerate() {
            s.fill(&cfg);
            if let Some(ts) = s.head_ts() {
                heap.push(Head { ts, source: i });
            }
        }
        KWayMerge {
            labels,
            sources: states,
            heap,
            cfg,
            metrics,
        }
    }

    /// Per-source accounting so far (complete once the iterator is dry).
    pub fn stats(&self) -> MergeStats {
        MergeStats {
            labels: self.labels.clone(),
            merged: self.sources.iter().map(|s| s.merged).collect(),
            late: self.sources.iter().map(|s| s.late).collect(),
        }
    }
}

impl Iterator for KWayMerge {
    type Item = TapRecord;

    fn next(&mut self) -> Option<TapRecord> {
        let head = self.heap.pop()?;
        let source = &mut self.sources[head.source];
        let record = source.release();
        if let Some(m) = &self.metrics {
            m.merged[head.source].inc();
        }
        source.fill(&self.cfg);
        if let Some(ts) = source.head_ts() {
            self.heap.push(Head {
                ts,
                source: head.source,
            });
        }
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered: usize = self.sources.iter().map(|s| s.buf.len()).sum();
        (buffered, None)
    }
}

impl std::fmt::Debug for KWayMerge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KWayMerge")
            .field("sources", &self.sources.len())
            .field("tolerance_us", &self.cfg.tolerance_us)
            .finish()
    }
}

/// Fuses `sources` into one time-ordered feed, returning the merged
/// records and per-source accounting. With a `registry`, the labeled
/// `cgc_ingest_merge_*_total{source=}` families record the same totals.
pub fn merge_sources(
    sources: Vec<MergeSource>,
    cfg: &MergeConfig,
    registry: Option<&Registry>,
) -> (Vec<TapRecord>, MergeStats) {
    let total: usize = sources.iter().map(|s| s.records.len()).sum();
    let mut merge = KWayMerge::new(sources, *cfg, registry);
    let mut out = Vec::with_capacity(total);
    for record in merge.by_ref() {
        out.push(record);
    }
    (out, merge.stats())
}

/// Splits one feed into `m` interleaved sources (record `i` goes to
/// source `i % m`), preserving per-source arrival order — the inverse of
/// the merge for any already-sorted feed. Test harnesses and the CLI's
/// `--split` use it to prove the merge is the identity on a recorded
/// feed.
pub fn split_round_robin(feed: &[TapRecord], m: usize) -> Vec<Vec<TapRecord>> {
    let m = m.max(1);
    let mut parts: Vec<Vec<TapRecord>> = (0..m)
        .map(|i| Vec::with_capacity(feed.len() / m + usize::from(i < feed.len() % m)))
        .collect();
    for (i, &record) in feed.iter().enumerate() {
        parts[i % m].push(record);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::packet::FiveTuple;
    use proptest::prelude::*;

    fn tuple(flow: u8) -> FiveTuple {
        FiveTuple::udp_v4([10, 0, 0, flow], 49003, [100, 64, 1, flow], 50_000)
    }

    fn feed(src: u8, timestamps: &[Micros]) -> Vec<TapRecord> {
        timestamps
            .iter()
            .map(|&ts| (ts, tuple(src), 1_200))
            .collect()
    }

    fn ts_of(records: &[TapRecord]) -> Vec<Micros> {
        records.iter().map(|r| r.0).collect()
    }

    #[test]
    fn empty_sources_merge_to_nothing() {
        let (out, stats) = merge_sources(vec![], &MergeConfig::default(), None);
        assert!(out.is_empty());
        assert_eq!(stats.merged_total(), 0);

        // An empty source among real ones contributes nothing and panics
        // nowhere.
        let (out, stats) = merge_sources(
            vec![
                MergeSource::new("a", feed(1, &[5, 10])),
                MergeSource::new("empty", Vec::new()),
            ],
            &MergeConfig::default(),
            None,
        );
        assert_eq!(ts_of(&out), [5, 10]);
        assert_eq!(stats.merged, [2, 0]);
        assert_eq!(stats.late, [0, 0]);
    }

    #[test]
    fn single_source_degenerates_to_pass_through() {
        let records = feed(1, &[3, 1, 4, 1, 5, 9, 2, 6]);
        // Zero tolerance: whatever order came in goes out — byte-for-byte
        // pass-through, with out-of-order records flagged late, not fixed.
        let cfg = MergeConfig {
            tolerance_us: 0,
            ..MergeConfig::default()
        };
        let (out, stats) = merge_sources(vec![MergeSource::new("a", records.clone())], &cfg, None);
        assert_eq!(out, records, "zero-tolerance single source is identity");
        assert_eq!(
            stats.late,
            [4],
            "each record below the running max is late under zero tolerance"
        );

        // A sorted single source is the identity under any tolerance.
        let sorted = feed(1, &[1, 1, 2, 3, 4, 5, 6, 9]);
        let (out, stats) = merge_sources(
            vec![MergeSource::new("a", sorted.clone())],
            &MergeConfig::default(),
            None,
        );
        assert_eq!(out, sorted);
        assert_eq!(stats.late_total(), 0);
    }

    #[test]
    fn identical_timestamps_are_stable_by_source_index() {
        // All three sources collide on ts 10 and 20; output must order
        // the collisions by source index, and equal-ts records within a
        // source by arrival order (payload length tags arrival).
        let mk = |src: u8, lens: &[u32]| -> Vec<TapRecord> {
            lens.iter().map(|&l| (10, tuple(src), l)).collect()
        };
        let (out, stats) = merge_sources(
            vec![
                MergeSource::new("s0", mk(1, &[100, 101])),
                MergeSource::new("s1", mk(2, &[200])),
                MergeSource::new("s2", mk(3, &[300, 301])),
            ],
            &MergeConfig::default(),
            None,
        );
        let lens: Vec<u32> = out.iter().map(|r| r.2).collect();
        assert_eq!(lens, [100, 101, 200, 300, 301]);
        assert_eq!(stats.late_total(), 0);
    }

    #[test]
    fn clock_offsets_shift_sources_onto_one_axis() {
        let (out, stats) = merge_sources(
            vec![
                MergeSource::new("on_time", feed(1, &[0, 100])),
                // Clock 40 µs behind the shared axis: +40 correction.
                MergeSource::with_offset("behind", 40, feed(2, &[10, 50])),
                // Clock 5 µs ahead: -5 correction; saturates at 0.
                MergeSource::with_offset("ahead", -5, feed(3, &[2, 60])),
            ],
            &MergeConfig::default(),
            None,
        );
        assert_eq!(ts_of(&out), [0, 0, 50, 55, 90, 100]);
        assert_eq!(stats.merged, [2, 2, 2]);
        assert_eq!(stats.late_total(), 0);
    }

    #[test]
    fn disorder_within_tolerance_is_resorted_silently() {
        // 30 arrives before 25; tolerance 10 ≥ the 5 µs regression, so
        // the lookahead buffer fixes it and nothing is late.
        let cfg = MergeConfig {
            tolerance_us: 10,
            ..MergeConfig::default()
        };
        let registry = Registry::new();
        let (out, stats) = merge_sources(
            vec![MergeSource::new("jittery", feed(1, &[10, 30, 25, 40]))],
            &cfg,
            Some(&registry),
        );
        assert_eq!(ts_of(&out), [10, 25, 30, 40]);
        assert_eq!(stats.late_total(), 0);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_with("cgc_ingest_merge_late_total", &[("source", "jittery")]),
            Some(0)
        );
        assert_eq!(
            snap.counter_with("cgc_ingest_merge_records_total", &[("source", "jittery")]),
            Some(4)
        );
    }

    #[test]
    fn late_beyond_tolerance_is_released_and_counted_never_dropped() {
        // 100 arrives after the source frontier reached 200 with
        // tolerance 50: the buffer has already released past it. It must
        // still come out (count preserved) and increment the counter.
        let cfg = MergeConfig {
            tolerance_us: 50,
            ..MergeConfig::default()
        };
        let registry = Registry::new();
        let (out, stats) = merge_sources(
            vec![
                MergeSource::new("clean", feed(1, &[0, 150, 300])),
                MergeSource::new("tardy", feed(2, &[10, 200, 100, 400])),
            ],
            &cfg,
            Some(&registry),
        );
        assert_eq!(out.len(), 7, "every record survives, late or not");
        assert_eq!(stats.merged, [3, 4]);
        assert_eq!(stats.late, [0, 1], "exactly the beyond-tolerance record");
        assert_eq!(stats.late_total(), 1);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_with("cgc_ingest_merge_late_total", &[("source", "tardy")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_with("cgc_ingest_merge_late_total", &[("source", "clean")]),
            Some(0)
        );
        // The late record is present with its payload intact.
        assert!(out.iter().any(|r| r.0 == 100 && r.1 == tuple(2)));
    }

    #[test]
    fn lookahead_cap_bounds_buffering_without_losing_records() {
        // A long run of identical timestamps would otherwise buffer
        // forever under a huge tolerance; the cap forces releases.
        let records = feed(1, &[7; 1000]);
        let cfg = MergeConfig {
            tolerance_us: u64::MAX / 2,
            lookahead_cap: 16,
        };
        let (out, stats) = merge_sources(vec![MergeSource::new("flat", records)], &cfg, None);
        assert_eq!(out.len(), 1000);
        assert_eq!(stats.late_total(), 0);
    }

    #[test]
    fn split_round_robin_partitions_and_preserves_order() {
        let records = feed(1, &[0, 1, 2, 3, 4, 5, 6]);
        let parts = split_round_robin(&records, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(ts_of(&parts[0]), [0, 3, 6]);
        assert_eq!(ts_of(&parts[1]), [1, 4]);
        assert_eq!(ts_of(&parts[2]), [2, 5]);
        assert_eq!(split_round_robin(&records, 0).len(), 1, "0 clamps to 1");
    }

    #[test]
    fn split_then_merge_is_the_identity_on_a_sorted_feed() {
        // Strictly increasing timestamps: with no cross-source ties the
        // merge's (ts, source) order coincides with the original global
        // order, so split+merge is an exact sequence identity.
        let records: Vec<TapRecord> = (0..500u64)
            .map(|i| (i * 3, tuple((i % 4) as u8), i as u32))
            .collect();
        for m in [1, 2, 3, 8] {
            let sources = split_round_robin(&records, m)
                .into_iter()
                .enumerate()
                .map(|(i, part)| MergeSource::new(format!("part{i}"), part))
                .collect();
            let (out, stats) = merge_sources(sources, &MergeConfig::default(), None);
            assert_eq!(out, records, "{m}-way split+merge must be identity");
            assert_eq!(stats.late_total(), 0);
            assert_eq!(stats.merged_total(), 500);
        }
    }

    #[test]
    fn split_then_merge_preserves_per_flow_order_despite_shared_timestamps() {
        // With duplicate timestamps straddling split parts the merge
        // only promises (ts, source-index) order globally — but each
        // flow's own sequence (what the monitor cares about) survives
        // any split, because a flow's records keep their relative
        // timestamps.
        let records: Vec<TapRecord> = (0..600u64)
            .map(|i| (i / 3, tuple((i % 4) as u8), i as u32))
            .collect();
        for m in [2, 3, 8] {
            let sources = split_round_robin(&records, m)
                .into_iter()
                .enumerate()
                .map(|(i, part)| MergeSource::new(format!("part{i}"), part))
                .collect();
            let (out, stats) = merge_sources(sources, &MergeConfig::default(), None);
            assert_eq!(stats.late_total(), 0, "{m}-way split is never late");
            assert!(out.windows(2).all(|w| w[0].0 <= w[1].0), "sorted output");
            for flow in 0..4u8 {
                let original: Vec<u32> = records
                    .iter()
                    .filter(|r| r.1 == tuple(flow))
                    .map(|r| r.2)
                    .collect();
                let merged: Vec<u32> = out
                    .iter()
                    .filter(|r| r.1 == tuple(flow))
                    .map(|r| r.2)
                    .collect();
                assert_eq!(merged, original, "flow {flow} reordered by {m}-way split");
            }
        }
    }

    proptest! {
        /// Against arbitrary (unsorted!) sources, the merge must (a)
        /// conserve records exactly — the multiset of outputs equals the
        /// union of offset-corrected inputs — and (b) with a tolerance
        /// covering each source's worst internal disorder, produce the
        /// fully sorted reference with zero late records.
        #[test]
        fn merge_matches_sorted_reference(
            feeds in prop::collection::vec(
                prop::collection::vec(0u64..5_000, 0..120),
                1..5
            )
        ) {
            // Tag each record with (source, index) via payload_len so
            // multiset equality is checkable exactly.
            let sources: Vec<MergeSource> = feeds
                .iter()
                .enumerate()
                .map(|(s, ts)| {
                    let records = ts
                        .iter()
                        .enumerate()
                        .map(|(i, &t)| (t, tuple(s as u8), (s * 1_000 + i) as u32))
                        .collect();
                    MergeSource::new(format!("s{s}"), records)
                })
                .collect();

            // Worst per-source disorder: max over prefixes of
            // (max_so_far - current).
            let worst = feeds
                .iter()
                .flat_map(|ts| {
                    let mut seen = 0u64;
                    ts.iter().map(move |&t| {
                        let d = seen.saturating_sub(t);
                        seen = seen.max(t);
                        d
                    })
                })
                .max()
                .unwrap_or(0);

            let cfg = MergeConfig { tolerance_us: worst, ..MergeConfig::default() };
            let (out, stats) = merge_sources(sources.clone(), &cfg, None);

            // (a) conservation: exact multiset equality via the unique tag.
            let mut got: Vec<u32> = out.iter().map(|r| r.2).collect();
            got.sort_unstable();
            let mut want: Vec<u32> = sources
                .iter()
                .flat_map(|s| s.records.iter().map(|r| r.2))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);

            // (b) sortedness + zero late under a covering tolerance.
            prop_assert!(out.windows(2).all(|w| w[0].0 <= w[1].0),
                "tolerance {} must yield sorted output", worst);
            prop_assert_eq!(stats.late_total(), 0);
        }
    }
}
