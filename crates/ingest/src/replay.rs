//! Paced release of recorded tap records against a [`Clock`].
//!
//! A recorded capture (pcap file or gamesim session feed) carries its
//! own timeline in the per-record timestamps. The replayer turns that
//! timeline back into wall-clock arrival pacing: record `i` is released
//! when the clock reaches
//!
//! ```text
//! deadline(i) = origin + (ts(i) - ts(0)) / pace
//! ```
//!
//! where `origin` is the clock reading when replay starts. `pace = 1.0`
//! replays in real time (special-cased to exact integer arithmetic),
//! `pace = 2.0` at double speed, and `pace = 0.0` means as-fast-as-
//! possible — no sleeping at all, which turns the replayer into a plain
//! feed iterator for offline runs.
//!
//! Against a [`VirtualClock`](nettrace::VirtualClock) the same code path
//! is deterministic and instant: `sleep_until` jumps the clock to the
//! deadline, so tests exercise the full pacing logic without wall time.
//!
//! Multi-source captures (several NICs, several pcaps) are fused into
//! the single sorted feed this module expects by the k-way merge in
//! [`crate::merge`]; a record the merge flagged late (beyond the
//! reordering tolerance) simply has a past deadline here and is
//! released immediately rather than re-sorted or dropped.

use std::sync::atomic::{AtomicBool, Ordering};

use cgc_core::shard::TapRecord;
use nettrace::clock::Clock;
use nettrace::pcap::PcapRecord;
use nettrace::units::Micros;

use crate::metrics::IngestMetrics;

/// How fast to release a recorded timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Speed multiplier over the recorded timeline: `1.0` = real time,
    /// `2.0` = double speed, `0.0` = as fast as possible (no pacing).
    pub pace: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { pace: 1.0 }
    }
}

impl ReplayConfig {
    /// Replay with no pacing at all — every record released immediately.
    pub fn as_fast_as_possible() -> Self {
        ReplayConfig { pace: 0.0 }
    }

    /// Whether this configuration paces releases (a zero or negative
    /// multiplier disables pacing entirely).
    pub fn paced(&self) -> bool {
        self.pace > 0.0
    }

    /// Scales a recorded-timeline offset into a replay-timeline offset.
    /// Real-time pace keeps exact integer microseconds; other paces go
    /// through f64 (sub-microsecond rounding is far below pacing jitter).
    fn scale(&self, delta: Micros) -> Micros {
        if self.pace == 1.0 {
            delta
        } else {
            (delta as f64 / self.pace) as Micros
        }
    }
}

/// What one replay run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Records released to the delivery callback.
    pub released: u64,
    /// True when a cancel flag stopped the run before the end of the feed.
    pub cancelled: bool,
    /// Worst observed release lag behind the pacing deadline, µs.
    pub max_lag_us: Micros,
}

/// Converts decoded pcap records into the monitor's tap-record shape.
pub fn pcap_feed(records: &[PcapRecord]) -> Vec<TapRecord> {
    records
        .iter()
        .map(|r| (r.ts, r.tuple, r.payload_len))
        .collect()
}

/// Replays `records` against `clock`, releasing each to `deliver` at its
/// paced deadline. Records must be sorted by timestamp (capture order).
///
/// `metrics`, when given, counts releases (`cgc_ingest_replayed_total`)
/// and records per-release lag (`cgc_ingest_pacing_lag_us`). `cancel`,
/// when given, is checked before every release so a Ctrl-C can stop a
/// long replay between records; the cut is reported in the stats, never
/// silent.
pub fn replay<F>(
    records: &[TapRecord],
    clock: &dyn Clock,
    config: &ReplayConfig,
    metrics: Option<&IngestMetrics>,
    cancel: Option<&AtomicBool>,
    mut deliver: F,
) -> ReplayStats
where
    F: FnMut(TapRecord),
{
    let mut stats = ReplayStats::default();
    let Some(&(first_ts, _, _)) = records.first() else {
        return stats;
    };
    let origin = clock.now();
    for &record in records {
        if let Some(flag) = cancel {
            if flag.load(Ordering::Relaxed) {
                stats.cancelled = true;
                break;
            }
        }
        if config.paced() {
            let deadline = origin + config.scale(record.0.saturating_sub(first_ts));
            clock.sleep_until(deadline);
            let lag = clock.now().saturating_sub(deadline);
            stats.max_lag_us = stats.max_lag_us.max(lag);
            if let Some(m) = metrics {
                m.pacing_lag_us.record(lag);
            }
        }
        deliver(record);
        stats.released += 1;
        if let Some(m) = metrics {
            m.replayed.inc();
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::clock::VirtualClock;
    use nettrace::packet::FiveTuple;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn tuple() -> FiveTuple {
        FiveTuple::udp_v4([10, 0, 0, 1], 49003, [100, 64, 1, 1], 50000)
    }

    fn feed(timestamps: &[Micros]) -> Vec<TapRecord> {
        timestamps.iter().map(|&ts| (ts, tuple(), 1200)).collect()
    }

    #[test]
    fn real_time_pace_releases_at_recorded_offsets() {
        // Capture starts at t=5s; replay clock starts at t=100s. Offsets
        // must be preserved relative to the replay origin, not absolute.
        let clock = VirtualClock::starting_at(100_000_000);
        let records = feed(&[5_000_000, 5_250_000, 6_000_000]);
        let mut release_times = Vec::new();
        let stats = replay(
            &records,
            &clock,
            &ReplayConfig::default(),
            None,
            None,
            |_| release_times.push(clock.now()),
        );
        assert_eq!(stats.released, 3);
        assert!(!stats.cancelled);
        assert_eq!(release_times, [100_000_000, 100_250_000, 101_000_000]);
        assert_eq!(
            stats.max_lag_us, 0,
            "virtual clock lands exactly on deadlines"
        );
    }

    #[test]
    fn pace_multiplier_compresses_the_timeline() {
        let clock = VirtualClock::starting_at(0);
        let records = feed(&[0, 1_000_000, 2_000_000]);
        let mut release_times = Vec::new();
        replay(
            &records,
            &clock,
            &ReplayConfig { pace: 4.0 },
            None,
            None,
            |_| release_times.push(clock.now()),
        );
        assert_eq!(
            release_times,
            [0, 250_000, 500_000],
            "4x pace quarters offsets"
        );
    }

    #[test]
    fn afap_pace_never_advances_a_virtual_clock() {
        let clock = VirtualClock::starting_at(7);
        let records = feed(&[0, 10_000_000, 20_000_000]);
        let stats = replay(
            &records,
            &clock,
            &ReplayConfig::as_fast_as_possible(),
            None,
            None,
            |_| {},
        );
        assert_eq!(stats.released, 3);
        assert_eq!(clock.now(), 7, "no pacing means no sleeps at all");
    }

    #[test]
    fn cancel_flag_stops_between_records_and_is_reported() {
        let clock = VirtualClock::starting_at(0);
        let records = feed(&[0, 1, 2, 3, 4]);
        let cancel = Arc::new(AtomicBool::new(false));
        let mut released = 0u64;
        let stats = replay(
            &records,
            &clock,
            &ReplayConfig::default(),
            None,
            Some(&cancel),
            |_| {
                released += 1;
                if released == 2 {
                    cancel.store(true, Ordering::Relaxed);
                }
            },
        );
        assert!(stats.cancelled);
        assert_eq!(stats.released, 2, "cancel lands before the third release");
    }

    #[test]
    fn empty_feed_is_a_no_op() {
        let clock = VirtualClock::starting_at(0);
        let stats = replay(&[], &clock, &ReplayConfig::default(), None, None, |_| {
            panic!("nothing to deliver")
        });
        assert_eq!(stats, ReplayStats::default());
    }
}
