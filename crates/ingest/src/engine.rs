//! The ingestion engine: bounded queues between tap producers and a
//! single router thread that feeds the analysis pipeline in batches.
//!
//! ```text
//!  producers (replay / capture threads)          router thread
//!  ┌──────────────┐   push(ts,tuple,len)   ┌──────────────────────┐
//!  │IngestProducer├──► queue[shard 0] ─────►                      │
//!  ├──────────────┤                        │  sweep → on_batch ───┼─► BatchSink
//!  │IngestProducer├──► queue[shard 1] ─────►  clock → on_tick     │   (MonitorSink →
//!  └──────────────┘        …               │  quiesce → finish    │    ShardedTapMonitor)
//!                                          └──────────────────────┘
//! ```
//!
//! Records are routed to queues by the direction-invariant five-tuple
//! hash, so both directions of a conversation traverse the same queue
//! and a single producer's per-flow packet order survives end to end.
//! Each sweep the router sizes a per-queue drain batch from its
//! [`BatchPolicy`] — under the default adaptive policy the observed
//! queue depth picks the size, so shallow queues hand records off with
//! minimal latency while deep queues amortize per-batch sink overhead —
//! and hands it to the sink. Queue depths, batch counts, the chosen
//! batch sizes (`cgc_ingest_batch_size`) and hand-off totals are
//! exported on every sweep.
//!
//! Shutdown is graceful by construction: [`IngestEngine::shutdown`]
//! stops admission (late pushes are rejected *and counted*), waits for
//! every producer handle to drop, lets the router drain the queues dry,
//! then calls [`BatchSink::finish`] — for a [`MonitorSink`] that is the
//! monitor's `finish_all`, which emits final session verdicts.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cgc_core::monitor::MonitoredSession;
use cgc_core::shard::{MonitorStats, ShardedTapMonitor, TapRecord};
use cgc_obs::{Registry, TraceSink, TraceStage};
use nettrace::clock::SharedClock;
use nettrace::packet::FiveTuple;
use nettrace::units::Micros;

use crate::metrics::IngestMetrics;
use crate::queue::{BackpressurePolicy, BoundedQueue, PushOutcome};

/// Where the router delivers drained records. Implemented by
/// [`MonitorSink`] for the real pipeline and by plain collectors in
/// tests, so the engine's queueing/shutdown mechanics are testable
/// without trained models.
pub trait BatchSink: Send + 'static {
    /// What [`finish`](BatchSink::finish) returns once the engine drains.
    type Output: Send + 'static;

    /// Consumes one drained batch (non-empty, queue order).
    fn on_batch(&mut self, records: &[TapRecord]);

    /// Called once per router sweep with the engine clock's reading —
    /// the hook periodic work (idle expiry) hangs off. Default: nothing.
    fn on_tick(&mut self, _now: Micros) {}

    /// Finalizes the sink after the last batch; the return value is
    /// surfaced through [`IngestRun::output`].
    fn finish(self) -> Self::Output;
}

/// [`BatchSink`] adapter over the sharded tap monitor, with optional
/// clock-driven idle expiry between batches.
pub struct MonitorSink {
    monitor: ShardedTapMonitor,
    idle_every: Option<Micros>,
    next_check: Micros,
    closed: Vec<MonitoredSession>,
}

impl MonitorSink {
    /// Wraps `monitor` with no periodic idle expiry: every flow still
    /// open at shutdown is finalized by the end-of-run drain, exactly
    /// like the offline batch path. This is the default because it keeps
    /// replayed runs byte-identical to offline analysis of the same feed.
    pub fn new(monitor: ShardedTapMonitor) -> Self {
        MonitorSink {
            monitor,
            idle_every: None,
            next_check: 0,
            closed: Vec::new(),
        }
    }

    /// Wraps `monitor` and additionally expires idle flows every `every`
    /// microseconds of engine-clock time — the long-lived deployment
    /// mode, where sessions must finalize while the tap keeps running.
    pub fn with_idle_checks(monitor: ShardedTapMonitor, every: Micros) -> Self {
        MonitorSink {
            monitor,
            idle_every: Some(every.max(1)),
            next_check: 0,
            closed: Vec::new(),
        }
    }
}

impl std::fmt::Debug for MonitorSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorSink")
            .field("shards", &self.monitor.shards())
            .field("idle_every", &self.idle_every)
            .field("closed", &self.closed.len())
            .finish()
    }
}

impl BatchSink for MonitorSink {
    type Output = (Vec<MonitoredSession>, MonitorStats);

    fn on_batch(&mut self, records: &[TapRecord]) {
        // One partitioned dispatch per router batch: the batch policy's
        // size choice becomes the unit of delivery to the shard workers.
        self.monitor.ingest_batch(records);
    }

    fn on_tick(&mut self, now: Micros) {
        if let Some(every) = self.idle_every {
            if now >= self.next_check {
                self.closed.extend(self.monitor.finish_idle(now));
                self.next_check = now + every;
            }
        }
    }

    fn finish(mut self) -> Self::Output {
        let (rest, stats) = self.monitor.finish_all();
        self.closed.extend(rest);
        (self.closed, stats)
    }
}

/// How the router sizes each per-queue drain batch.
///
/// Batch size trades hand-off latency against per-batch sink overhead:
/// a small batch reaches the sink as soon as it is popped, a large one
/// amortizes the sink's fixed per-call cost across more records. The
/// adaptive policy resolves the trade at runtime from the observed
/// queue depth — a shallow queue means arrivals are trickling in and
/// latency dominates, a deep queue means the router is behind and
/// throughput dominates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Pop up to this many records per queue per sweep regardless of
    /// depth (≥ 1) — the pre-adaptive behaviour, kept for benchmarks
    /// and for pinning batch size in tests.
    Fixed(usize),
    /// Size each batch to the queue's observed depth, clamped into
    /// `[min, max]`: depth-many records when `min ≤ depth ≤ max`, so a
    /// near-empty queue hands off immediately and a backlogged queue
    /// drains in `max`-record gulps.
    Adaptive {
        /// Smallest batch worth a sink call (≥ 1).
        min: usize,
        /// Largest batch popped in one gulp; bounds sink call latency
        /// and the router's reusable buffer (≥ `min`).
        max: usize,
    },
}

impl BatchPolicy {
    /// Records to pop from a queue currently holding `depth` records.
    ///
    /// ```
    /// use cgc_ingest::BatchPolicy;
    /// let adaptive = BatchPolicy::default(); // Adaptive { min: 32, max: 8192 }
    /// assert_eq!(adaptive.size_for(4), 32); // shallow queue: min-size hand-off
    /// assert_eq!(adaptive.size_for(500), 500); // mid-range tracks depth
    /// assert_eq!(adaptive.size_for(100_000), 8_192); // backlog: max-size gulps
    /// ```
    pub fn size_for(&self, depth: usize) -> usize {
        match *self {
            BatchPolicy::Fixed(n) => n.max(1),
            BatchPolicy::Adaptive { min, max } => {
                let min = min.max(1);
                depth.clamp(min, max.max(min))
            }
        }
    }

    /// Largest batch this policy can ever request (buffer sizing).
    fn max_size(&self) -> usize {
        match *self {
            BatchPolicy::Fixed(n) => n.max(1),
            BatchPolicy::Adaptive { min, max } => max.max(min).max(1),
        }
    }
}

impl Default for BatchPolicy {
    /// Adaptive over `32..=8192`: single-record hand-offs are still
    /// cheap enough at trickle rates, and 8192 records per sink call is
    /// past the point of diminishing amortization returns.
    fn default() -> Self {
        BatchPolicy::Adaptive {
            min: 32,
            max: 8_192,
        }
    }
}

/// Engine sizing and policy.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Ingestion queues; records are routed by five-tuple hash (≥ 1).
    pub queues: usize,
    /// Slots per queue (rounded up to a power of two).
    pub queue_capacity: usize,
    /// What producers do when their queue is full.
    pub policy: BackpressurePolicy,
    /// How the router sizes each per-queue drain batch.
    pub batch: BatchPolicy,
    /// Clock driving [`BatchSink::on_tick`]; `None` disables ticks.
    pub clock: Option<SharedClock>,
    /// Span recorder for the Queue/Router stages; disabled by default —
    /// a disabled sink is one branch per push, no flow hashing.
    pub trace: TraceSink,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queues: 2,
            queue_capacity: 65_536,
            policy: BackpressurePolicy::Block,
            batch: BatchPolicy::default(),
            clock: None,
            trace: TraceSink::disabled(),
        }
    }
}

/// State shared between producers, the router, and the engine handle.
struct EngineShared {
    queues: Vec<BoundedQueue<TapRecord>>,
    policy: BackpressurePolicy,
    metrics: IngestMetrics,
    /// Live [`IngestProducer`] handles; the router only exits once this
    /// reaches zero with admission closed and the queues dry.
    producers: AtomicUsize,
    /// Cleared by shutdown: late pushes are rejected and counted.
    accepting: AtomicBool,
    /// Queue/Router stage spans (possibly disabled or sampled).
    trace: TraceSink,
}

/// A cloneable producer handle. Every clone is tracked; the engine's
/// router keeps draining until the last handle drops, so records pushed
/// by any live producer can never be stranded in a queue.
pub struct IngestProducer {
    shared: Arc<EngineShared>,
}

impl IngestProducer {
    /// Pushes one tap observation, routing by the direction-invariant
    /// five-tuple hash. Returns `false` when the record was *not*
    /// admitted (engine shutting down, or rejected under `drop_newest`);
    /// either way the loss is counted, never silent.
    pub fn push(&self, ts: Micros, wire_tuple: &FiveTuple, payload_len: u32) -> bool {
        let shared = &*self.shared;
        if !shared.accepting.load(Ordering::Acquire) {
            shared.metrics.rejected_closed.inc();
            return false;
        }
        let queue = &shared.queues[wire_tuple.shard(shared.queues.len())];
        let outcome = queue.push((ts, *wire_tuple, payload_len), shared.policy);
        match outcome {
            PushOutcome::Accepted => {}
            PushOutcome::AcceptedAfterBlock => shared.metrics.blocked.inc(),
            PushOutcome::AcceptedDroppingOldest(n) => {
                shared.metrics.count_drop(BackpressurePolicy::DropOldest, n)
            }
            PushOutcome::Rejected => shared.metrics.count_drop(BackpressurePolicy::DropNewest, 1),
        }
        if outcome.accepted() {
            shared.metrics.enqueued.inc();
            if shared.trace.is_enabled() {
                // Flow hashing only happens with tracing on; the sampled-
                // out path is the hash plus one modulo, no allocation.
                shared
                    .trace
                    .record(wire_tuple.flow_id(), 0, TraceStage::Queue, ts, 0);
            }
        }
        outcome.accepted()
    }

    /// Pushes a pre-built tap record.
    pub fn push_record(&self, record: TapRecord) -> bool {
        self.push(record.0, &record.1, record.2)
    }
}

impl Clone for IngestProducer {
    fn clone(&self) -> Self {
        self.shared.producers.fetch_add(1, Ordering::AcqRel);
        IngestProducer {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for IngestProducer {
    fn drop(&mut self) {
        self.shared.producers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for IngestProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestProducer")
            .field("queues", &self.shared.queues.len())
            .field("policy", &self.shared.policy)
            .finish()
    }
}

/// What a completed engine run produced, with registry-lifetime ingest
/// totals alongside the sink's output.
#[derive(Debug)]
pub struct IngestRun<T> {
    /// Whatever the sink's [`BatchSink::finish`] returned (session
    /// reports and monitor stats for a [`MonitorSink`]).
    pub output: T,
    /// Records admitted into the queues.
    pub enqueued: u64,
    /// Records handed from the queues to the sink.
    pub handed_off: u64,
    /// Records lost to backpressure (`drop_oldest` + `drop_newest`).
    pub dropped: u64,
    /// Pushes rejected because shutdown had begun.
    pub rejected_closed: u64,
}

/// A running ingestion engine: queues plus the router thread feeding
/// sink `S`. Create with [`IngestEngine::start`], feed through handles
/// from [`IngestEngine::producer`], end with [`IngestEngine::shutdown`].
///
/// ```
/// use cgc_ingest::{BatchSink, IngestConfig, IngestEngine};
/// use cgc_obs::Registry;
/// use nettrace::packet::FiveTuple;
///
/// struct CountSink(u64);
/// impl BatchSink for CountSink {
///     type Output = u64;
///     fn on_batch(&mut self, batch: &[cgc_core::shard::TapRecord]) {
///         self.0 += batch.len() as u64;
///     }
///     fn finish(self) -> u64 {
///         self.0
///     }
/// }
///
/// let registry = Registry::new();
/// let engine = IngestEngine::start(CountSink(0), IngestConfig::default(), &registry);
/// let producer = engine.producer();
/// let tuple = FiveTuple::udp_v4([10, 0, 0, 1], 49003, [100, 64, 0, 1], 50_000);
/// for i in 0..1_000u64 {
///     assert!(producer.push(i * 10, &tuple, 1_200));
/// }
/// drop(producer); // the router drains until the last producer is gone
/// let run = engine.shutdown();
/// assert_eq!(run.output, 1_000);
/// assert_eq!(run.dropped, 0, "block policy loses nothing");
/// ```
pub struct IngestEngine<S: BatchSink> {
    shared: Arc<EngineShared>,
    router: Option<JoinHandle<S::Output>>,
}

impl<S: BatchSink> IngestEngine<S> {
    /// Builds the queues, registers metrics on `registry`, and spawns
    /// the router thread over `sink`.
    pub fn start(sink: S, config: IngestConfig, registry: &Registry) -> Self {
        let queues = config.queues.max(1);
        let metrics = IngestMetrics::register(registry, queues);
        let shared = Arc::new(EngineShared {
            queues: (0..queues)
                .map(|_| BoundedQueue::with_capacity(config.queue_capacity))
                .collect(),
            policy: config.policy,
            metrics,
            producers: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            trace: config.trace.clone(),
        });
        if let Some(q) = shared.queues.first() {
            shared.metrics.queue_capacity.set(q.capacity() as i64);
        }
        let router_shared = Arc::clone(&shared);
        let batch = config.batch;
        let clock = config.clock.clone();
        let router = std::thread::Builder::new()
            .name("ingest-router".into())
            .spawn(move || router_loop(router_shared, sink, batch, clock))
            .expect("spawn ingest router");
        IngestEngine {
            shared,
            router: Some(router),
        }
    }

    /// A new tracked producer handle.
    pub fn producer(&self) -> IngestProducer {
        self.shared.producers.fetch_add(1, Ordering::AcqRel);
        IngestProducer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The engine's metric handles (shared with the router).
    pub fn metrics(&self) -> &IngestMetrics {
        &self.shared.metrics
    }

    /// Stops admitting new records without waiting for the drain. Pushes
    /// after this point fail fast and are counted in
    /// `cgc_ingest_rejected_closed_total`. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shared.accepting.store(false, Ordering::Release);
    }

    /// Graceful shutdown: closes admission, waits for every producer
    /// handle to drop and for the router to drain the queues dry, then
    /// finalizes the sink. Call only after arranging for outstanding
    /// [`IngestProducer`]s to drop (e.g. by cancelling their replay),
    /// otherwise this blocks until they do.
    pub fn shutdown(mut self) -> IngestRun<S::Output> {
        self.begin_shutdown();
        let output = self
            .router
            .take()
            .expect("router joined once")
            .join()
            .expect("ingest router panicked");
        let m = &self.shared.metrics;
        IngestRun {
            output,
            enqueued: m.enqueued.get(),
            handed_off: m.handed_off.get(),
            dropped: m.dropped_total(),
            rejected_closed: m.rejected_closed.get(),
        }
    }
}

impl<S: BatchSink> Drop for IngestEngine<S> {
    /// Dropping without [`shutdown`](IngestEngine::shutdown) still closes
    /// admission so the detached router can exit once producers drop; it
    /// just nobody collects the sink's output.
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

impl<S: BatchSink> std::fmt::Debug for IngestEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestEngine")
            .field("queues", &self.shared.queues.len())
            .field("policy", &self.shared.policy)
            .field("producers", &self.shared.producers.load(Ordering::Relaxed))
            .field("accepting", &self.shared.accepting.load(Ordering::Relaxed))
            .finish()
    }
}

/// The router: sweep queues → hand batches to the sink → tick → exit
/// when admission is closed, no producer survives, and the queues are
/// dry.
fn router_loop<S: BatchSink>(
    shared: Arc<EngineShared>,
    mut sink: S,
    batch: BatchPolicy,
    clock: Option<SharedClock>,
) -> S::Output {
    let mut buf: Vec<TapRecord> = Vec::with_capacity(batch.max_size().min(65_536));
    let mut empty_sweeps = 0u32;
    loop {
        let mut handed = 0u64;
        for (i, queue) in shared.queues.iter().enumerate() {
            // Depth is sampled once per sweep; racing producers only make
            // the batch smaller or larger than ideal, never incorrect.
            let target = batch.size_for(queue.len());
            buf.clear();
            while buf.len() < target {
                match queue.try_pop() {
                    Some(record) => buf.push(record),
                    None => break,
                }
            }
            shared.metrics.queue_depth[i].set(queue.len() as i64);
            if !buf.is_empty() {
                shared.metrics.batch_size.record(buf.len() as u64);
                if shared.trace.is_enabled() {
                    for &(ts, tuple, _) in &buf {
                        shared
                            .trace
                            .record(tuple.flow_id(), 0, TraceStage::Router, ts, 0);
                    }
                }
                sink.on_batch(&buf);
                handed += buf.len() as u64;
            }
        }
        if let Some(c) = &clock {
            sink.on_tick(c.now());
        }
        if handed > 0 {
            shared.metrics.batches.inc();
            shared.metrics.handed_off.add(handed);
            empty_sweeps = 0;
            continue;
        }
        // Quiescence check order matters: once the producer count reads
        // zero with admission closed, no further push can start, so a
        // subsequent all-empty sweep proves the queues are dry for good.
        let quiesced = !shared.accepting.load(Ordering::Acquire)
            && shared.producers.load(Ordering::Acquire) == 0;
        if quiesced && shared.queues.iter().all(|q| q.is_empty()) {
            break;
        }
        empty_sweeps = empty_sweeps.saturating_add(1);
        if empty_sweeps < 64 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    for gauge in &shared.metrics.queue_depth {
        gauge.set(0);
    }
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::clock::VirtualClock;
    use std::sync::Mutex;

    fn tuple(flow: u8) -> FiveTuple {
        FiveTuple::udp_v4([10, 0, 0, flow], 49003, [100, 64, 1, flow], 50_000)
    }

    /// Collects every delivered record; output is the collected feed.
    struct VecSink(Vec<TapRecord>);

    impl BatchSink for VecSink {
        type Output = Vec<TapRecord>;
        fn on_batch(&mut self, records: &[TapRecord]) {
            self.0.extend_from_slice(records);
        }
        fn finish(self) -> Vec<TapRecord> {
            self.0
        }
    }

    /// Records every tick time; output is the tick trace.
    struct TickSink(Arc<Mutex<Vec<Micros>>>);

    impl BatchSink for TickSink {
        type Output = ();
        fn on_batch(&mut self, _records: &[TapRecord]) {}
        fn on_tick(&mut self, now: Micros) {
            self.0.lock().unwrap().push(now);
        }
        fn finish(self) {}
    }

    #[test]
    fn concurrent_producers_drain_losslessly_under_block() {
        const PRODUCERS: u8 = 4;
        const PER: u64 = 25_000;
        let registry = Registry::new();
        let engine = IngestEngine::start(
            VecSink(Vec::new()),
            IngestConfig {
                queues: 2,
                queue_capacity: 256, // force real backpressure
                policy: BackpressurePolicy::Block,
                ..Default::default()
            },
            &registry,
        );
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let producer = engine.producer();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        assert!(producer.push(i, &tuple(p), 1200));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let run = engine.shutdown();
        let total = u64::from(PRODUCERS) * PER;
        assert_eq!(run.enqueued, total);
        assert_eq!(run.handed_off, total);
        assert_eq!(run.dropped, 0, "block policy is lossless");
        assert_eq!(run.output.len(), total as usize);
        // Per-flow order survives the queue hop: each producer owns one
        // flow, and its timestamps must arrive strictly increasing.
        let mut next = [0u64; PRODUCERS as usize];
        for &(ts, t, _) in &run.output {
            let flow = match t.src_ip {
                std::net::IpAddr::V4(v4) => v4.octets()[3] as usize,
                _ => unreachable!(),
            };
            assert_eq!(ts, next[flow], "flow {flow} reordered");
            next[flow] += 1;
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cgc_ingest_enqueued_total"), Some(total));
        assert_eq!(snap.counter("cgc_ingest_handed_off_total"), Some(total));
    }

    #[test]
    fn drop_newest_losses_show_up_in_run_totals() {
        let registry = Registry::new();
        // A 2-slot queue and a router that can't keep up is guaranteed to
        // reject most of a burst pushed with no consumer yielding.
        let engine = IngestEngine::start(
            VecSink(Vec::new()),
            IngestConfig {
                queues: 1,
                queue_capacity: 2,
                policy: BackpressurePolicy::DropNewest,
                ..Default::default()
            },
            &registry,
        );
        let producer = engine.producer();
        let mut accepted = 0u64;
        for i in 0..10_000u64 {
            if producer.push(i, &tuple(1), 1200) {
                accepted += 1;
            }
        }
        drop(producer);
        let run = engine.shutdown();
        assert_eq!(run.enqueued, accepted);
        assert_eq!(run.handed_off, accepted);
        assert_eq!(run.dropped + accepted, 10_000, "every record accounted");
        assert_eq!(run.output.len(), accepted as usize);
    }

    #[test]
    fn pushes_after_begin_shutdown_are_rejected_and_counted() {
        let registry = Registry::new();
        let engine = IngestEngine::start(VecSink(Vec::new()), IngestConfig::default(), &registry);
        let producer = engine.producer();
        assert!(producer.push(1, &tuple(1), 100));
        engine.begin_shutdown();
        assert!(!producer.push(2, &tuple(1), 100));
        assert!(!producer.push_record((3, tuple(1), 100)));
        drop(producer);
        let run = engine.shutdown();
        assert_eq!(run.enqueued, 1);
        assert_eq!(run.rejected_closed, 2);
        assert_eq!(run.output.len(), 1);
    }

    #[test]
    fn batch_policy_sizes_by_depth() {
        let fixed = BatchPolicy::Fixed(256);
        assert_eq!(fixed.size_for(0), 256);
        assert_eq!(fixed.size_for(1_000_000), 256);
        assert_eq!(BatchPolicy::Fixed(0).size_for(10), 1, "floored at 1");

        let adaptive = BatchPolicy::Adaptive { min: 32, max: 8192 };
        assert_eq!(adaptive.size_for(0), 32, "shallow clamps to min");
        assert_eq!(adaptive.size_for(500), 500, "mid-range tracks depth");
        assert_eq!(adaptive.size_for(100_000), 8192, "deep clamps to max");

        let degenerate = BatchPolicy::Adaptive { min: 64, max: 8 };
        assert_eq!(degenerate.size_for(1_000), 64, "max lifted to min");
    }

    #[test]
    fn batch_size_histogram_tracks_the_policy_cap() {
        let registry = Registry::new();
        let engine = IngestEngine::start(
            VecSink(Vec::new()),
            IngestConfig {
                queues: 1,
                batch: BatchPolicy::Fixed(4),
                ..Default::default()
            },
            &registry,
        );
        let producer = engine.producer();
        for i in 0..1_000u64 {
            assert!(producer.push(i, &tuple(1), 1200));
        }
        drop(producer);
        let run = engine.shutdown();
        assert_eq!(run.handed_off, 1_000);
        let snap = registry.snapshot();
        let hist = snap.histogram("cgc_ingest_batch_size").unwrap();
        assert!(hist.count > 0, "non-empty batches must be observed");
        assert_eq!(hist.sum, 1_000, "histogram sums to records handed off");
        assert!(
            hist.max <= 4,
            "no batch may exceed Fixed(4), saw {}",
            hist.max
        );
    }

    #[test]
    fn adaptive_batching_drains_losslessly_and_respects_max() {
        let registry = Registry::new();
        let engine = IngestEngine::start(
            VecSink(Vec::new()),
            IngestConfig {
                queues: 1,
                batch: BatchPolicy::Adaptive { min: 8, max: 64 },
                ..Default::default()
            },
            &registry,
        );
        let producer = engine.producer();
        for i in 0..10_000u64 {
            assert!(producer.push(i, &tuple(1), 1200));
        }
        drop(producer);
        let run = engine.shutdown();
        assert_eq!(run.handed_off, 10_000);
        assert_eq!(run.dropped, 0);
        let snap = registry.snapshot();
        let hist = snap.histogram("cgc_ingest_batch_size").unwrap();
        assert_eq!(hist.sum, 10_000);
        assert!(hist.max <= 64, "adaptive max bounds every batch");
    }

    #[test]
    fn trace_sink_records_queue_and_router_spans() {
        use cgc_obs::{TraceCollector, TraceConfig};
        let registry = Registry::new();
        let (trace, mut collector) = TraceCollector::new(TraceConfig::default(), &registry);
        let engine = IngestEngine::start(
            VecSink(Vec::new()),
            IngestConfig {
                queues: 1,
                queue_capacity: 64,
                trace,
                ..Default::default()
            },
            &registry,
        );
        let producer = engine.producer();
        let flow = tuple(1).flow_id();
        for i in 0..10u64 {
            assert!(producer.push(i, &tuple(1), 1200));
        }
        drop(producer);
        engine.shutdown();
        collector.drain();
        let timeline = collector.timeline(flow).expect("flow traced");
        let queue_spans = timeline
            .spans
            .iter()
            .filter(|s| s.stage == TraceStage::Queue)
            .count();
        let router_spans = timeline
            .spans
            .iter()
            .filter(|s| s.stage == TraceStage::Router)
            .count();
        assert_eq!(queue_spans, 10, "one queue span per admitted record");
        assert_eq!(router_spans, 10, "one router span per handed-off record");
        // The capacity gauge reflects the power-of-two rounded queue size.
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("cgc_ingest_queue_capacity"), Some(64));
        assert_eq!(snap.counter("cgc_trace_spans_total"), Some(20));
    }

    #[test]
    fn disabled_trace_sink_records_nothing() {
        let registry = Registry::new();
        let engine = IngestEngine::start(VecSink(Vec::new()), IngestConfig::default(), &registry);
        let producer = engine.producer();
        assert!(producer.push(1, &tuple(1), 100));
        drop(producer);
        engine.shutdown();
        // No trace families were touched: the counter was never registered.
        assert_eq!(registry.snapshot().counter("cgc_trace_spans_total"), None);
    }

    #[test]
    fn router_ticks_with_the_engine_clock() {
        let registry = Registry::new();
        let clock = VirtualClock::starting_at(42);
        let ticks = Arc::new(Mutex::new(Vec::new()));
        let engine = IngestEngine::start(
            TickSink(Arc::clone(&ticks)),
            IngestConfig {
                clock: Some(clock.shared()),
                ..Default::default()
            },
            &registry,
        );
        clock.advance_to(1_000);
        engine.shutdown();
        let ticks = ticks.lock().unwrap();
        assert!(!ticks.is_empty(), "router must tick while idle");
        assert!(ticks.iter().all(|&t| t == 42 || t == 1_000));
    }
}
