//! Bounded lock-free ingestion queues with explicit backpressure.
//!
//! The queue between a tap producer (replay engine, capture thread) and
//! the router that feeds the sharded monitor is where a long-lived
//! deployment absorbs bursts. Three policies cover the deployment
//! trade-offs, and every outcome is *counted, never silent*:
//!
//! * [`BackpressurePolicy::Block`] — lossless: the producer spins until
//!   space frees up. Right for offline replay and for taps that can
//!   tolerate producer stall (kernel buffer upstream).
//! * [`BackpressurePolicy::DropOldest`] — freshest-data-wins: evict the
//!   oldest queued record to admit the new one. Right for live
//!   classification where stale packets are worth less than current ones.
//! * [`BackpressurePolicy::DropNewest`] — cheapest: reject the incoming
//!   record. Right when per-flow prefix integrity matters more than
//!   recency.
//!
//! The ring itself is the Vyukov array queue already proven in
//! `cgc-obs`' event ring ([`EventRing`]); this module adds the policy
//! layer and capacity bookkeeping.

use cgc_obs::event::EventRing;

/// What a producer does when its queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Spin until space frees up — lossless, producer pays the stall.
    #[default]
    Block,
    /// Evict the oldest queued record to admit the new one.
    DropOldest,
    /// Reject the incoming record.
    DropNewest,
}

impl BackpressurePolicy {
    /// Stable lowercase name used as the `policy` metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::DropOldest => "drop_oldest",
            BackpressurePolicy::DropNewest => "drop_newest",
        }
    }

    /// Parses a CLI spelling (`block`, `drop-oldest`/`drop_oldest`,
    /// `drop-newest`/`drop_newest`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.replace('-', "_").as_str() {
            "block" => Some(BackpressurePolicy::Block),
            "drop_oldest" => Some(BackpressurePolicy::DropOldest),
            "drop_newest" => Some(BackpressurePolicy::DropNewest),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackpressurePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How one push resolved — the caller owns turning this into counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued without contention.
    Accepted,
    /// Enqueued after spinning on a full ring (`Block`).
    AcceptedAfterBlock,
    /// Enqueued after evicting `n` older records (`DropOldest`).
    AcceptedDroppingOldest(u64),
    /// The incoming record was rejected (`DropNewest`).
    Rejected,
}

impl PushOutcome {
    /// Whether the pushed record made it into the queue.
    pub fn accepted(self) -> bool {
        !matches!(self, PushOutcome::Rejected)
    }

    /// Records this push displaced or rejected.
    pub fn dropped(self) -> u64 {
        match self {
            PushOutcome::AcceptedDroppingOldest(n) => n,
            PushOutcome::Rejected => 1,
            _ => 0,
        }
    }
}

/// A bounded lock-free MPMC queue with policy-driven overflow handling.
///
/// ```
/// use cgc_ingest::{BackpressurePolicy, BoundedQueue};
///
/// let q: BoundedQueue<u64> = BoundedQueue::with_capacity(4);
/// for i in 0..4 {
///     assert!(q.push(i, BackpressurePolicy::DropOldest).accepted());
/// }
/// // Full ring + drop-oldest: the eviction is reported, never silent.
/// let outcome = q.push(4, BackpressurePolicy::DropOldest);
/// assert_eq!(outcome.dropped(), 1);
/// assert_eq!(q.try_pop(), Some(1), "record 0 was the one evicted");
/// ```
pub struct BoundedQueue<T> {
    ring: EventRing<T>,
}

impl<T> BoundedQueue<T> {
    /// A queue holding up to `capacity` records (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        BoundedQueue {
            ring: EventRing::with_capacity(capacity),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Approximate queued records (exact when quiescent).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Non-blocking enqueue; `Err(value)` when full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        self.ring.try_push(value)
    }

    /// Dequeues one record, `None` when empty.
    pub fn try_pop(&self) -> Option<T> {
        self.ring.try_pop()
    }

    /// Enqueues under `policy`, resolving overflow per the policy table
    /// above. Never loses a record silently: the returned outcome carries
    /// the exact displaced/rejected count.
    pub fn push(&self, value: T, policy: BackpressurePolicy) -> PushOutcome {
        let mut value = match self.ring.try_push(value) {
            Ok(()) => return PushOutcome::Accepted,
            Err(v) => v,
        };
        match policy {
            BackpressurePolicy::Block => {
                let mut spins = 0u32;
                loop {
                    match self.ring.try_push(value) {
                        Ok(()) => return PushOutcome::AcceptedAfterBlock,
                        Err(v) => value = v,
                    }
                    spins = spins.wrapping_add(1);
                    if spins.is_multiple_of(64) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
            BackpressurePolicy::DropOldest => {
                let mut evicted = 0u64;
                loop {
                    if self.ring.try_pop().is_some() {
                        evicted += 1;
                    }
                    match self.ring.try_push(value) {
                        Ok(()) => return PushOutcome::AcceptedDroppingOldest(evicted),
                        Err(v) => value = v,
                    }
                }
            }
            BackpressurePolicy::DropNewest => PushOutcome::Rejected,
        }
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn policy_names_round_trip() {
        for p in [
            BackpressurePolicy::Block,
            BackpressurePolicy::DropOldest,
            BackpressurePolicy::DropNewest,
        ] {
            assert_eq!(BackpressurePolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(
            BackpressurePolicy::parse("drop-oldest"),
            Some(BackpressurePolicy::DropOldest)
        );
        assert_eq!(BackpressurePolicy::parse("nope"), None);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest_records() {
        let q: BoundedQueue<u64> = BoundedQueue::with_capacity(4);
        for i in 0..4u64 {
            assert_eq!(
                q.push(i, BackpressurePolicy::DropOldest),
                PushOutcome::Accepted
            );
        }
        let out = q.push(4, BackpressurePolicy::DropOldest);
        assert_eq!(out, PushOutcome::AcceptedDroppingOldest(1));
        assert_eq!(out.dropped(), 1);
        let drained: Vec<u64> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(
            drained,
            [1, 2, 3, 4],
            "oldest record evicted, rest in order"
        );
    }

    #[test]
    fn drop_newest_rejects_the_incoming_record() {
        let q: BoundedQueue<u64> = BoundedQueue::with_capacity(2);
        assert!(q.push(0, BackpressurePolicy::DropNewest).accepted());
        assert!(q.push(1, BackpressurePolicy::DropNewest).accepted());
        let out = q.push(2, BackpressurePolicy::DropNewest);
        assert_eq!(out, PushOutcome::Rejected);
        assert!(!out.accepted());
        assert_eq!(out.dropped(), 1);
        let drained: Vec<u64> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(drained, [0, 1], "queue prefix preserved");
    }

    #[test]
    fn block_waits_for_the_consumer_and_loses_nothing() {
        const N: u64 = 50_000;
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::with_capacity(64));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut blocked = 0u64;
                for i in 0..N {
                    match q.push(i, BackpressurePolicy::Block) {
                        PushOutcome::Accepted => {}
                        PushOutcome::AcceptedAfterBlock => blocked += 1,
                        other => panic!("block policy produced {other:?}"),
                    }
                }
                blocked
            })
        };
        let mut got = Vec::with_capacity(N as usize);
        while got.len() < N as usize {
            match q.try_pop() {
                Some(v) => got.push(v),
                None => std::thread::yield_now(),
            }
        }
        let blocked = producer.join().unwrap();
        assert_eq!(got, (0..N).collect::<Vec<_>>(), "lossless and in order");
        assert!(blocked > 0, "a 64-slot ring must block a 50k burst");
    }

    #[test]
    fn concurrent_drop_oldest_accounts_for_every_record() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 10_000;
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::with_capacity(128));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut dropped = 0u64;
                    for i in 0..PER {
                        dropped += q
                            .push(p * PER + i, BackpressurePolicy::DropOldest)
                            .dropped();
                    }
                    dropped
                })
            })
            .collect();
        let dropped: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut remaining = 0u64;
        while q.try_pop().is_some() {
            remaining += 1;
        }
        assert_eq!(
            dropped + remaining,
            PRODUCERS * PER,
            "every record either drained or counted dropped"
        );
    }
}
