//! Pre-registered metric handles for the ingestion subsystem.
//!
//! One [`IngestMetrics`] is built per engine from the registry it was
//! given (process-global in deployment, private in tests). Queue depth is
//! a labeled gauge family (`shard="0"`, `shard="1"`, …) and drops are a
//! labeled counter family keyed by the policy that caused them, so a
//! Prometheus scrape can tell a hot shard from a slow consumer and a
//! deliberate `drop_oldest` eviction from a `drop_newest` rejection.

use std::sync::Arc;

use cgc_obs::{Counter, Gauge, Histogram, Registry};

use crate::queue::BackpressurePolicy;

/// Cached handles for every metric the ingest subsystem records.
#[derive(Debug, Clone)]
pub struct IngestMetrics {
    /// Records accepted into any ingest queue.
    pub enqueued: Arc<Counter>,
    /// Records lost under `drop_oldest` (evicted from the queue).
    pub dropped_oldest: Arc<Counter>,
    /// Records lost under `drop_newest` (rejected at the queue mouth).
    pub dropped_newest: Arc<Counter>,
    /// Pushes that had to spin on a full queue under `block`.
    pub blocked: Arc<Counter>,
    /// Pushes rejected because the engine had begun shutting down.
    pub rejected_closed: Arc<Counter>,
    /// Per-shard queue depth gauges, indexed by shard id.
    pub queue_depth: Vec<Arc<Gauge>>,
    /// Slots per queue shard (set once at engine start); saturation is
    /// `max(queue_depth) / queue_capacity`, consumed by `/healthz` and
    /// the SLO engine.
    pub queue_capacity: Arc<Gauge>,
    /// Router sweeps that handed at least one record to the monitor.
    pub batches: Arc<Counter>,
    /// Size of each non-empty batch the router handed to the sink — under
    /// adaptive batching this is the distribution the policy actually
    /// chose (small at shallow depth, large at deep).
    pub batch_size: Arc<Histogram>,
    /// Records handed from the queues to the sharded monitor.
    pub handed_off: Arc<Counter>,
    /// Replayed records released by the pacing engine.
    pub replayed: Arc<Counter>,
    /// How far behind its deadline each paced release ran, microseconds.
    pub pacing_lag_us: Arc<Histogram>,
}

impl IngestMetrics {
    /// Registers (or re-attaches to) the ingest metric families on
    /// `registry`, with one depth gauge per queue shard.
    pub fn register(registry: &Registry, queues: usize) -> Self {
        let queue_depth = (0..queues)
            .map(|shard| {
                registry.gauge_with(
                    "cgc_ingest_queue_depth",
                    "Records waiting in an ingest queue shard",
                    &[("shard", &shard.to_string())],
                )
            })
            .collect();
        IngestMetrics {
            enqueued: registry.counter(
                "cgc_ingest_enqueued_total",
                "Tap records accepted into ingest queues",
            ),
            dropped_oldest: registry.counter_with(
                "cgc_ingest_dropped_total",
                "Tap records lost to ingest backpressure",
                &[("policy", "drop_oldest")],
            ),
            dropped_newest: registry.counter_with(
                "cgc_ingest_dropped_total",
                "Tap records lost to ingest backpressure",
                &[("policy", "drop_newest")],
            ),
            blocked: registry.counter(
                "cgc_ingest_blocked_total",
                "Pushes that stalled on a full ingest queue under the block policy",
            ),
            rejected_closed: registry.counter(
                "cgc_ingest_rejected_closed_total",
                "Pushes rejected because the ingest engine was shutting down",
            ),
            queue_depth,
            queue_capacity: registry.gauge(
                "cgc_ingest_queue_capacity",
                "Slots per ingest queue shard (power-of-two rounded)",
            ),
            batches: registry.counter(
                "cgc_ingest_batches_total",
                "Router sweeps that handed records to the monitor",
            ),
            batch_size: registry.histogram(
                "cgc_ingest_batch_size",
                "Records per non-empty batch handed from a queue to the sink",
            ),
            handed_off: registry.counter(
                "cgc_ingest_handed_off_total",
                "Tap records handed from ingest queues to the sharded monitor",
            ),
            replayed: registry.counter(
                "cgc_ingest_replayed_total",
                "Tap records released by the paced replay engine",
            ),
            pacing_lag_us: registry.histogram(
                "cgc_ingest_pacing_lag_us",
                "Microseconds each paced release ran behind its deadline",
            ),
        }
    }

    /// Counts one push outcome's losses against the right labeled series.
    pub fn count_drop(&self, policy: BackpressurePolicy, dropped: u64) {
        if dropped == 0 {
            return;
        }
        match policy {
            BackpressurePolicy::DropOldest => self.dropped_oldest.add(dropped),
            BackpressurePolicy::DropNewest => self.dropped_newest.add(dropped),
            BackpressurePolicy::Block => {}
        }
    }

    /// Total records lost to backpressure so far, across policies.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_oldest.get() + self.dropped_newest.get()
    }
}

/// Per-source counter handles for the k-way merge, labeled by source
/// name (`source="eth0"`, `source="lab.pcap"`, …).
///
/// Both vectors are indexed by source position in the merge, matching
/// [`crate::merge::MergeStats`]. A non-zero late counter is the merge's
/// signal that a source's disorder exceeded the configured tolerance —
/// those records were still delivered, but global output order around
/// them is no longer certified.
#[derive(Debug, Clone)]
pub struct MergeMetrics {
    /// Records each source contributed to the merged stream.
    pub merged: Vec<Arc<Counter>>,
    /// Records that arrived later than the source frontier minus the
    /// reordering tolerance (delivered anyway, counted here).
    pub late: Vec<Arc<Counter>>,
}

impl MergeMetrics {
    /// Registers (or re-attaches to) the merge counter families on
    /// `registry`, one labeled series per source label.
    pub fn register(registry: &Registry, labels: &[String]) -> Self {
        let merged = labels
            .iter()
            .map(|label| {
                registry.counter_with(
                    "cgc_ingest_merge_records_total",
                    "Records contributed to the merged stream, per source",
                    &[("source", label)],
                )
            })
            .collect();
        let late = labels
            .iter()
            .map(|label| {
                registry.counter_with(
                    "cgc_ingest_merge_late_total",
                    "Records arriving beyond the merge reordering tolerance, per source",
                    &[("source", label)],
                )
            })
            .collect();
        MergeMetrics { merged, late }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_obs::export;

    #[test]
    fn families_render_with_labels_in_prometheus() {
        let registry = Registry::new();
        let m = IngestMetrics::register(&registry, 2);
        m.enqueued.add(5);
        m.queue_depth[0].set(3);
        m.queue_depth[1].set(7);
        m.count_drop(BackpressurePolicy::DropOldest, 2);
        m.count_drop(BackpressurePolicy::DropNewest, 1);
        let text = export::prometheus(&registry.snapshot());
        assert!(
            text.contains("cgc_ingest_queue_depth{shard=\"0\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("cgc_ingest_queue_depth{shard=\"1\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("cgc_ingest_dropped_total{policy=\"drop_oldest\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("cgc_ingest_dropped_total{policy=\"drop_newest\"} 1"),
            "{text}"
        );
        assert_eq!(m.dropped_total(), 3);
    }

    #[test]
    fn merge_families_render_per_source() {
        let registry = Registry::new();
        let labels = vec!["eth0".to_string(), "eth1".to_string()];
        let m = MergeMetrics::register(&registry, &labels);
        m.merged[0].add(7);
        m.merged[1].add(3);
        m.late[1].inc();
        let text = export::prometheus(&registry.snapshot());
        assert!(
            text.contains("cgc_ingest_merge_records_total{source=\"eth0\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("cgc_ingest_merge_records_total{source=\"eth1\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("cgc_ingest_merge_late_total{source=\"eth1\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn block_policy_never_counts_drops() {
        let registry = Registry::new();
        let m = IngestMetrics::register(&registry, 1);
        m.count_drop(BackpressurePolicy::Block, 10);
        assert_eq!(m.dropped_total(), 0);
    }
}
