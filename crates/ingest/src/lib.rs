//! `cgc-ingest` — paced live-replay ingestion for the gamescope stack.
//!
//! The offline pipeline analyzes a finished capture in one pass. This
//! crate turns the same pipeline into a long-lived streaming deployment:
//!
//! * **Paced replay** ([`replay()`]): releases a recorded feed (pcap file
//!   or gamesim session) at its recorded timestamps against a
//!   [`Clock`](nettrace::Clock) — real time at a tap, an instantly
//!   advancing virtual clock in tests — with a speed multiplier
//!   (`pace = 1.0` real time, `0` as fast as possible).
//! * **Bounded queues with backpressure** ([`queue`]): lock-free rings
//!   between producers and the analysis pipeline, with `block` /
//!   `drop_oldest` / `drop_newest` overflow policies. Drops are counted,
//!   never silent, and exported through `cgc-obs` as labeled families
//!   (`cgc_ingest_queue_depth{shard=…}`,
//!   `cgc_ingest_dropped_total{policy=…}`).
//! * **The engine** ([`engine`]): a router thread draining the queues in
//!   adaptively sized batches (see [`BatchPolicy`]) into a [`BatchSink`]
//!   — [`MonitorSink`] feeds the sharded tap monitor — plus graceful
//!   shutdown that quiesces producers, drains the queues dry and emits
//!   final session verdicts.
//! * **K-way merge** ([`merge`]): fuses N independently captured,
//!   independently clocked feeds (multiple NICs, pcaps or simulated
//!   taps) into one globally time-ordered stream, with per-source clock
//!   skew correction, bounded reordering tolerance, and per-source
//!   `cgc_ingest_merge_late_total{source=…}` lateness counters.
//!
//! The key invariant, proven end to end by the workspace's
//! `e2e_ingest` and `e2e_merge` tests: a virtually-clocked paced replay
//! — whether of one feed or of an M-way split merged back together —
//! produces byte-identical session reports and journal timelines to
//! offline batch analysis of the same feed.
//!
//! ```
//! use cgc_ingest::{BackpressurePolicy, BatchSink, IngestConfig, IngestEngine};
//! use cgc_obs::Registry;
//!
//! struct Count(u64);
//! impl BatchSink for Count {
//!     type Output = u64;
//!     fn on_batch(&mut self, records: &[cgc_core::shard::TapRecord]) {
//!         self.0 += records.len() as u64;
//!     }
//!     fn finish(self) -> u64 {
//!         self.0
//!     }
//! }
//!
//! let registry = Registry::new();
//! let engine = IngestEngine::start(Count(0), IngestConfig::default(), &registry);
//! let producer = engine.producer();
//! let tuple = nettrace::FiveTuple::udp_v4([10, 0, 0, 1], 49003, [100, 64, 1, 1], 50_000);
//! for i in 0..100 {
//!     producer.push(i, &tuple, 1200);
//! }
//! drop(producer);
//! let run = engine.shutdown();
//! assert_eq!(run.output, 100);
//! assert_eq!(run.dropped, 0);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod merge;
pub mod metrics;
pub mod queue;
pub mod replay;

pub use engine::{
    BatchPolicy, BatchSink, IngestConfig, IngestEngine, IngestProducer, IngestRun, MonitorSink,
};
pub use merge::{
    merge_sources, split_round_robin, KWayMerge, MergeConfig, MergeSource, MergeStats,
};
pub use metrics::{IngestMetrics, MergeMetrics};
pub use queue::{BackpressurePolicy, BoundedQueue, PushOutcome};
pub use replay::{pcap_feed, replay, ReplayConfig, ReplayStats};
