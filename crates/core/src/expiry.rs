//! Bucketed idle-expiry queue for the tap flow table.
//!
//! The serial monitor used to find idle flows by scanning every tracked
//! flow on each `finish_idle` call — O(active flows) even when nothing is
//! due. [`ExpiryWheel`] replaces that with a timing wheel: flows are
//! bucketed by their last-seen timestamp, and a `finish_idle` pass only
//! walks the buckets whose time range has fallen behind the cutoff. A flow
//! touched again is *lazily* reinserted — the stale entry in its old bucket
//! is skipped when that bucket eventually drains, so `touch` stays O(1)
//! amortized.
//!
//! The wheel also knows the exact least-recently-seen flow (the oldest
//! live bucket is drained of stale entries first, then its minimum
//! last-seen wins), which the bounded flow table uses for LRU eviction.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;

use nettrace::clock::{RealClock, SharedClock};
use nettrace::units::Micros;

/// Per-entry bookkeeping: the newest bucket holding a live entry for the
/// key, and the exact last-seen time.
#[derive(Debug, Clone, Copy)]
struct Slot {
    bucket: u64,
    last_seen: Micros,
}

/// A timing wheel keyed by arbitrary flow keys.
///
/// Invariants: every live key appears in `slots`, and `buckets[slot.bucket]`
/// contains it. Buckets may additionally hold *stale* entries for keys that
/// were touched again later (or removed); those are discarded when the
/// bucket is visited.
#[derive(Debug)]
pub struct ExpiryWheel<K> {
    /// Bucket index -> keys last touched within that bucket's time range.
    buckets: BTreeMap<u64, Vec<K>>,
    /// Live entry per key.
    slots: HashMap<K, Slot>,
    /// Bucket width in microseconds.
    width: Micros,
    /// Entries examined across all drain/evict operations (stale included) —
    /// the observability counter proving expiry work is proportional to due
    /// flows, not to the table size.
    scanned: u64,
    /// Time source behind [`drain_idle`](Self::drain_idle): wall time in
    /// deployment, a `VirtualClock` in tests.
    clock: SharedClock,
}

impl<K: Copy + Eq + Hash> ExpiryWheel<K> {
    /// A wheel with the given bucket width (clamped to ≥ 1 µs), running
    /// idle expiry on wall time.
    pub fn new(bucket_width: Micros) -> Self {
        Self::with_clock(bucket_width, Arc::new(RealClock::new()))
    }

    /// A wheel whose [`drain_idle`](Self::drain_idle) cutoffs come from
    /// `clock` — inject a `VirtualClock` for deterministic, instant
    /// expiry tests.
    pub fn with_clock(bucket_width: Micros, clock: SharedClock) -> Self {
        ExpiryWheel {
            buckets: BTreeMap::new(),
            slots: HashMap::new(),
            width: bucket_width.max(1),
            scanned: 0,
            clock,
        }
    }

    /// Replaces the wheel's time source (existing entries are unaffected;
    /// only future `drain_idle` cutoffs move to the new clock).
    pub fn set_clock(&mut self, clock: SharedClock) {
        self.clock = clock;
    }

    /// The wheel's current time, on its clock's axis.
    pub fn clock_now(&self) -> Micros {
        self.clock.now()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no live keys remain.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total entries examined by [`drain_due`](Self::drain_due) and
    /// [`pop_least_recent`](Self::pop_least_recent) so far.
    pub fn entries_scanned(&self) -> u64 {
        self.scanned
    }

    /// Number of buckets currently allocated (live + stale); exposed for
    /// tests asserting the wheel stays compact.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Records that `key` was seen at `last_seen`. The previous entry (if
    /// any) goes stale in place; only the newest bucket counts.
    pub fn touch(&mut self, key: K, last_seen: Micros) {
        let bucket = last_seen / self.width;
        match self.slots.get_mut(&key) {
            Some(slot) => {
                let same_bucket = slot.bucket == bucket;
                slot.last_seen = last_seen;
                if same_bucket {
                    return; // entry already lives in the right bucket
                }
                slot.bucket = bucket;
            }
            None => {
                self.slots.insert(key, Slot { bucket, last_seen });
            }
        }
        self.buckets.entry(bucket).or_default().push(key);
    }

    /// Forgets `key` (stale bucket entries are cleaned up lazily).
    pub fn remove(&mut self, key: &K) {
        self.slots.remove(key);
    }

    /// Exact last-seen time of a live key.
    pub fn last_seen(&self, key: &K) -> Option<Micros> {
        self.slots.get(key).map(|s| s.last_seen)
    }

    /// Removes and returns every key with `last_seen < cutoff`, visiting
    /// only buckets whose time range starts before the cutoff. Keys in the
    /// partially-due boundary bucket that are not yet idle stay put.
    pub fn drain_due(&mut self, cutoff: Micros) -> Vec<K> {
        let mut due = Vec::new();
        // Bucket b covers [b*width, (b+1)*width): only buckets starting
        // before the cutoff can hold due keys.
        let boundary = cutoff / self.width;
        let candidates: Vec<u64> = self.buckets.range(..=boundary).map(|(&b, _)| b).collect();
        for b in candidates {
            let entries = self.buckets.remove(&b).expect("bucket present");
            let mut keep = Vec::new();
            for key in entries {
                self.scanned += 1;
                match self.slots.get(&key) {
                    // Live entry in this bucket and actually idle.
                    Some(slot) if slot.bucket == b && slot.last_seen < cutoff => {
                        self.slots.remove(&key);
                        due.push(key);
                    }
                    // Live entry in this bucket but inside the boundary
                    // bucket's not-yet-due half: keep it where it is.
                    Some(slot) if slot.bucket == b => keep.push(key),
                    // Stale (touched later, or removed): drop silently.
                    _ => {}
                }
            }
            if !keep.is_empty() {
                self.buckets.insert(b, keep);
            }
        }
        due
    }

    /// Removes and returns every key idle for `idle_timeout` or longer on
    /// the wheel's clock — `drain_due(clock.now() - idle_timeout)`. This
    /// is the deployment-facing form of expiry: with a `RealClock` a
    /// long-lived monitor expires flows on wall time; with a
    /// `VirtualClock` tests advance time explicitly and expiry is
    /// deterministic and instant.
    pub fn drain_idle(&mut self, idle_timeout: Micros) -> Vec<K> {
        let cutoff = self.clock.now().saturating_sub(idle_timeout);
        self.drain_due(cutoff)
    }

    /// Removes and returns the exact least-recently-seen key, cleaning up
    /// stale entries from the oldest buckets along the way.
    pub fn pop_least_recent(&mut self) -> Option<K> {
        loop {
            let b = *self.buckets.keys().next()?;
            let entries = self.buckets.remove(&b).expect("bucket present");
            // Keep only entries still live in this bucket; among them the
            // minimum last-seen is the global minimum, because every older
            // bucket has already been cleaned away.
            let mut live: Vec<K> = Vec::with_capacity(entries.len());
            for key in entries {
                self.scanned += 1;
                if self.slots.get(&key).is_some_and(|s| s.bucket == b) {
                    live.push(key);
                }
            }
            if live.is_empty() {
                continue; // bucket was all stale — try the next oldest
            }
            let (idx, _) = live
                .iter()
                .enumerate()
                .min_by_key(|(_, k)| self.slots[k].last_seen)
                .expect("non-empty");
            let victim = live.swap_remove(idx);
            self.slots.remove(&victim);
            if !live.is_empty() {
                self.buckets.insert(b, live);
            }
            return Some(victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_and_drain_respect_cutoff() {
        let mut w: ExpiryWheel<u32> = ExpiryWheel::new(1_000_000);
        w.touch(1, 100);
        w.touch(2, 1_500_000);
        w.touch(3, 2_500_000);
        assert_eq!(w.len(), 3);
        let mut due = w.drain_due(2_000_000);
        due.sort_unstable();
        assert_eq!(due, vec![1, 2]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.drain_due(2_000_000), Vec::<u32>::new());
    }

    #[test]
    fn retouching_defers_expiry() {
        let mut w: ExpiryWheel<u32> = ExpiryWheel::new(1_000_000);
        w.touch(7, 100);
        w.touch(7, 5_000_000); // seen again much later
        assert_eq!(w.drain_due(4_000_000), Vec::<u32>::new());
        assert_eq!(w.drain_due(6_000_000), vec![7]);
        assert!(w.is_empty());
    }

    #[test]
    fn boundary_bucket_is_split_exactly() {
        // Two keys share the boundary bucket; only the one strictly before
        // the cutoff expires.
        let mut w: ExpiryWheel<u32> = ExpiryWheel::new(1_000_000);
        w.touch(1, 1_200_000);
        w.touch(2, 1_800_000);
        assert_eq!(w.drain_due(1_500_000), vec![1]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.drain_due(1_900_000), vec![2]);
    }

    #[test]
    fn removed_keys_never_drain() {
        let mut w: ExpiryWheel<u32> = ExpiryWheel::new(1_000);
        w.touch(1, 10);
        w.touch(2, 20);
        w.remove(&1);
        assert_eq!(w.drain_due(1_000_000), vec![2]);
    }

    #[test]
    fn pop_least_recent_is_exact_over_random_times() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut w: ExpiryWheel<u32> = ExpiryWheel::new(250_000);
        let mut truth: Vec<(u32, Micros)> = Vec::new();
        for key in 0..200u32 {
            // Touch several times; only the last matters.
            let mut last = 0;
            for _ in 0..rng.gen_range(1..4usize) {
                last = rng.gen_range(0..60_000_000u64);
                w.touch(key, last);
            }
            truth.push((key, last));
        }
        // Popping repeatedly must yield keys in exact last-seen order.
        truth.sort_by_key(|&(_, ts)| ts);
        for &(expect, _) in &truth {
            assert_eq!(w.pop_least_recent(), Some(expect));
        }
        assert_eq!(w.pop_least_recent(), None);
    }

    #[test]
    fn drain_matches_naive_scan_on_random_times() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut w: ExpiryWheel<u32> = ExpiryWheel::new(777_777);
        let mut naive: HashMap<u32, Micros> = HashMap::new();
        for key in 0..500u32 {
            let ts = rng.gen_range(0..120_000_000u64);
            w.touch(key, ts);
            naive.insert(key, ts);
        }
        for cutoff in [0, 1, 30_000_000, 60_000_001, 119_999_999, 200_000_000] {
            let mut expect: Vec<u32> = naive
                .iter()
                .filter(|(_, &ts)| ts < cutoff)
                .map(|(&k, _)| k)
                .collect();
            naive.retain(|_, &mut ts| ts >= cutoff);
            let mut got = w.drain_due(cutoff);
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "cutoff {cutoff}");
        }
        assert!(w.is_empty());
        assert_eq!(w.bucket_count(), 0);
    }

    #[test]
    fn drain_idle_runs_on_virtual_time_deterministically() {
        use nettrace::clock::VirtualClock;
        let clock = VirtualClock::starting_at(0);
        let mut w: ExpiryWheel<u32> = ExpiryWheel::with_clock(1_000_000, clock.shared());
        w.touch(1, 100);
        w.touch(2, 30_000_000);
        // Clock still at flow 2's era: only flow 1 is 60 s idle.
        clock.advance_to(61_000_000);
        assert_eq!(w.drain_idle(60_000_000), vec![1]);
        assert_eq!(w.drain_idle(60_000_000), Vec::<u32>::new());
        // Jump the virtual clock — no wall waiting — and flow 2 expires.
        clock.advance_by(30_000_000);
        assert_eq!(w.drain_idle(60_000_000), vec![2]);
        assert!(w.is_empty());
        assert_eq!(w.clock_now(), 91_000_000);
    }

    #[test]
    fn set_clock_moves_future_cutoffs() {
        use nettrace::clock::VirtualClock;
        let mut w: ExpiryWheel<u32> = ExpiryWheel::new(1_000);
        w.touch(9, 10);
        // On the default wall clock (origin 0, just constructed) nothing
        // is an hour idle; swap in a virtual clock far in the future.
        let late = VirtualClock::starting_at(3_600_000_000 * 24);
        w.set_clock(late.shared());
        assert_eq!(w.drain_idle(3_600_000_000), vec![9]);
    }

    #[test]
    fn scan_work_tracks_due_flows_not_table_size() {
        // 10 000 recent flows plus one idle flow: draining the idle one
        // must not examine the whole table.
        let mut w: ExpiryWheel<u32> = ExpiryWheel::new(1_000_000);
        w.touch(0, 5); // ancient
        for key in 1..=10_000u32 {
            w.touch(key, 500_000_000 + key as u64);
        }
        let before = w.entries_scanned();
        assert_eq!(w.drain_due(100_000_000), vec![0]);
        let examined = w.entries_scanned() - before;
        assert!(examined < 10, "examined {examined} entries for 1 due flow");
        assert_eq!(w.len(), 10_000);
    }
}
