//! Tap-level monitoring of many concurrent sessions.
//!
//! The pipeline of Fig. 6 does not see one flow at a time — it sits on an
//! ISP link where packets of many subscribers' sessions interleave.
//! [`TapMonitor`] is that front end: it keys flows by normalized
//! five-tuple, uses the platform port signatures to orient each flow
//! (server side ⇒ downstream) and to reject non-gaming traffic, rebases
//! timestamps to each flow's start, and drives one [`SessionAnalyzer`] per
//! accepted flow. Flows idle past a timeout are finalized and their
//! [`SessionReport`]s emitted — exactly how an operator turns a raw packet
//! feed into per-session context records.
//!
//! Idle detection runs on an [`ExpiryWheel`],
//! so a `finish_idle` pass touches only the flows that are actually due
//! rather than scanning the whole table, and the flow table is bounded:
//! past [`MonitorConfig::max_flows`] the least-recently-seen flow is
//! finalized early to make room (counted in [`ShardStats::evicted_flows`]).
//! The same monitor state serves as one worker shard of the parallel
//! [`ShardedTapMonitor`](crate::shard::ShardedTapMonitor).

use std::collections::HashMap;

use cgc_obs::drift::DriftSink;
use cgc_obs::event::{CloseCause, EventKind};
use cgc_obs::journal::EventSink;
use cgc_obs::{TraceSink, TraceStage};
use nettrace::flow::FlowStats;
use nettrace::packet::{Direction, FiveTuple, Packet};
use nettrace::pcap::PcapRecord;
use nettrace::units::Micros;
use serde::{Deserialize, Serialize};

use crate::bundle::ModelSource;
use crate::expiry::ExpiryWheel;
use crate::filter::{CloudGamingFilter, FilterConfig, Platform};
use crate::metrics::{MonitorMetrics, PipelineMetrics};
use crate::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer, SessionReport};

/// Tap monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Per-flow analyzer configuration.
    pub analyzer: AnalyzerConfig,
    /// Flow filter thresholds.
    pub filter: FilterConfig,
    /// A flow idle for this long is finalized (microseconds).
    pub idle_timeout: Micros,
    /// Default QoS context for QoE labeling (override per flow with
    /// [`TapMonitor::set_qoe`]).
    pub qoe: QoeInputs,
    /// Hard cap on concurrently tracked flows; when a new flow arrives at
    /// the cap, the least-recently-seen flow is finalized early (its report
    /// surfaces on the next `finish_idle`/`finish_all`).
    pub max_flows: usize,
    /// Bucket width of the idle-expiry wheel (microseconds).
    pub expiry_bucket: Micros,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            analyzer: AnalyzerConfig::default(),
            filter: FilterConfig::default(),
            idle_timeout: 60_000_000, // 60 s
            qoe: QoeInputs::default(),
            max_flows: 250_000,
            expiry_bucket: 1_000_000, // 1 s
        }
    }
}

/// A finalized session observed at the tap.
#[derive(Debug, Clone)]
pub struct MonitoredSession {
    /// The session five-tuple in downstream orientation.
    pub tuple: FiveTuple,
    /// Detected platform.
    pub platform: Platform,
    /// Tap timestamp of the flow's first packet.
    pub started_at: Micros,
    /// Tap timestamp of the flow's last packet.
    pub last_seen: Micros,
    /// Whether the volumetric confirmation ever passed (flows that never
    /// looked like streaming still get a report, flagged here).
    pub confirmed: bool,
    /// Model-registry version the flow's analyzer pinned at admission
    /// (0 when the monitor serves a fixed, non-swappable bundle).
    pub model_version: u32,
    /// The pipeline's report.
    pub report: SessionReport,
}

/// Observability counters of one monitor (one shard of the parallel front
/// end, or the whole serial monitor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Packets accepted into some flow's analyzer.
    pub ingested_packets: u64,
    /// Packets dropped for lacking a platform signature or failing the
    /// pre-filter.
    pub ignored_packets: u64,
    /// Flows currently tracked.
    pub active_flows: u64,
    /// Flows finalized for any reason (idle, drain or eviction).
    pub finalized_flows: u64,
    /// Flows finalized early because the table hit `max_flows`.
    pub evicted_flows: u64,
    /// Expiry-wheel entries examined while finding idle/evictable flows —
    /// proportional to due flows, not table size.
    pub expiry_entries_scanned: u64,
    /// Record batches received (only the sharded front end batches; the
    /// serial monitor leaves this 0).
    pub batches: u64,
}

impl ShardStats {
    /// Accumulates another shard's counters into this one (`active_flows`
    /// and the rest are all additive).
    pub fn merge(&mut self, other: &ShardStats) {
        self.ingested_packets += other.ingested_packets;
        self.ignored_packets += other.ignored_packets;
        self.active_flows += other.active_flows;
        self.finalized_flows += other.finalized_flows;
        self.evicted_flows += other.evicted_flows;
        self.expiry_entries_scanned += other.expiry_entries_scanned;
        self.batches += other.batches;
    }
}

struct FlowEntry<'b> {
    analyzer: SessionAnalyzer<'b>,
    /// Normalized tuple — the interning key, kept for map removal when the
    /// entry leaves the arena.
    key: FiveTuple,
    down_tuple: FiveTuple,
    platform: Platform,
    started_at: Micros,
    last_seen: Micros,
    stats: FlowStats,
    /// Cached journal id (`FiveTuple::flow_id` of the normalized tuple).
    flow_id: u64,
    /// Registry version the analyzer pinned at admission (0 = fixed).
    model_version: u32,
}

/// Multiplexing front end driving one analyzer per detected gaming flow.
///
/// Flow keys are interned: the normalized five-tuple maps to a `u32` arena
/// slot once on admission, and all per-packet bookkeeping (expiry touches,
/// entry access) runs on the slot id — hashing a 4-byte key instead of the
/// 40-byte tuple, with entries reused through a free list so steady-state
/// flow churn performs no per-flow allocation in the table itself.
pub struct TapMonitor<'b> {
    /// Fixed bundle or hot-swappable [`LiveModel`] slot; every admitted
    /// flow pins the version serving at that moment.
    ///
    /// [`LiveModel`]: cgc_lifecycle::LiveModel
    models: ModelSource<'b>,
    config: MonitorConfig,
    filter: CloudGamingFilter,
    /// Normalized tuple → arena slot.
    flows: HashMap<FiveTuple, u32>,
    /// Slot-indexed entries; `None` marks a slot on the free list.
    arena: Vec<Option<FlowEntry<'b>>>,
    /// Reusable arena slots of finalized flows.
    free: Vec<u32>,
    expiry: ExpiryWheel<u32>,
    /// Sessions evicted at the cap, held until the next finalize call.
    evicted: Vec<MonitoredSession>,
    ingested_packets: u64,
    ignored_packets: u64,
    finalized_flows: u64,
    evicted_flows: u64,
    batches: u64,
    metrics: MonitorMetrics,
    pipeline_metrics: PipelineMetrics,
    /// Flight-recorder sink handed to every flow's analyzer (disabled by
    /// default on injected-registry monitors; `new` wires the global one).
    journal: EventSink,
    /// Span recorder handed to every flow's analyzer; the monitor itself
    /// records the Shard hand-off span at flow admission.
    trace: TraceSink,
    /// Drift-score sink handed to every flow's analyzer (disabled by
    /// default on injected-registry monitors; `new` wires the global one).
    drift: DriftSink,
    /// Wheel-scan count already published to the registry counter.
    expiry_published: u64,
}

impl<'b> TapMonitor<'b> {
    /// A monitor over a trained bundle (or a hot-swappable
    /// [`LiveModel`](cgc_lifecycle::LiveModel) slot), recording
    /// telemetry into the process-wide registry.
    pub fn new(models: impl Into<ModelSource<'b>>, config: MonitorConfig) -> Self {
        let mut monitor = Self::with_metrics(
            models,
            config,
            MonitorMetrics::global().clone(),
            PipelineMetrics::global().clone(),
        );
        // Like the metrics: the global-registry constructor records into
        // the process-wide journal (free until one is installed).
        monitor.set_journal(cgc_obs::journal::global_sink());
        monitor.set_trace(cgc_obs::trace::global_sink());
        monitor.set_drift(cgc_obs::drift::global_sink());
        monitor
    }

    /// A monitor recording telemetry into `registry` instead of the
    /// process-wide one (used by tests and tools that need isolation).
    pub fn with_registry(
        models: impl Into<ModelSource<'b>>,
        config: MonitorConfig,
        registry: &cgc_obs::Registry,
    ) -> Self {
        Self::with_metrics(
            models,
            config,
            MonitorMetrics::register(registry),
            PipelineMetrics::register(registry),
        )
    }

    /// A monitor recording telemetry into injected handles (used by
    /// tests and tools that need an isolated registry).
    pub fn with_metrics(
        models: impl Into<ModelSource<'b>>,
        config: MonitorConfig,
        metrics: MonitorMetrics,
        pipeline_metrics: PipelineMetrics,
    ) -> Self {
        TapMonitor {
            models: models.into(),
            config,
            filter: CloudGamingFilter::new(config.filter),
            flows: HashMap::new(),
            arena: Vec::new(),
            free: Vec::new(),
            expiry: ExpiryWheel::new(config.expiry_bucket),
            evicted: Vec::new(),
            ingested_packets: 0,
            ignored_packets: 0,
            finalized_flows: 0,
            evicted_flows: 0,
            batches: 0,
            metrics,
            pipeline_metrics,
            journal: EventSink::disabled(),
            trace: TraceSink::disabled(),
            drift: DriftSink::disabled(),
            expiry_published: 0,
        }
    }

    /// Routes this monitor's lifecycle events (and those of every flow
    /// analyzer created afterwards) into `sink`.
    pub fn set_journal(&mut self, sink: EventSink) {
        self.journal = sink;
    }

    /// Routes stage-boundary spans (this monitor's Shard hand-offs and
    /// every subsequently admitted flow's Slot/Classifier/Verdict spans)
    /// into `sink`. Flows admitted before the call keep their old sink.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Routes classifier score observations (confidence + margin, from
    /// every subsequently admitted flow's inferences) into `sink` for
    /// label-free drift detection. Flows admitted before the call keep
    /// their old sink.
    pub fn set_drift(&mut self, sink: DriftSink) {
        self.drift = sink;
    }

    /// Replaces the clock behind [`finish_idle_now`](Self::finish_idle_now):
    /// wall time by default, a `VirtualClock` for deterministic tests. The
    /// clock must share the tap timebase (anchor a `RealClock` at the
    /// capture origin when replaying).
    pub fn set_clock(&mut self, clock: nettrace::clock::SharedClock) {
        self.expiry.set_clock(clock);
    }

    /// Ingests one observed datagram: tap timestamp, wire five-tuple (src =
    /// sender) and RTP payload length. Packets of flows without a platform
    /// port signature are counted and dropped.
    pub fn ingest(&mut self, ts: Micros, wire_tuple: &FiveTuple, payload_len: u32) {
        // Orient the conversation: the platform-signature port is the server.
        let (down_tuple, platform, dir) = if let Some(p) = Platform::from_port(wire_tuple.src_port)
        {
            (*wire_tuple, p, Direction::Downstream)
        } else if let Some(p) = Platform::from_port(wire_tuple.dst_port) {
            (wire_tuple.reversed(), p, Direction::Upstream)
        } else {
            self.ignored_packets += 1;
            self.metrics.ignored.inc();
            return;
        };
        if self.filter.pre_check(&down_tuple).is_none() {
            self.ignored_packets += 1;
            self.metrics.ignored.inc();
            return;
        }

        let key = down_tuple.normalized();
        let slot = match self.flows.get(&key) {
            Some(&slot) => slot,
            None => {
                if self.flows.len() >= self.config.max_flows.max(1) {
                    self.evict_least_recent();
                }
                let flow_id = key.flow_id();
                // Pin the model generation once per flow: the analyzer
                // borrows this exact bundle for its whole life, so a
                // concurrent hot-swap redirects only future admissions.
                let (bundle, model_version) = self.models.pin();
                let mut analyzer = SessionAnalyzer::with_metrics(
                    bundle,
                    self.config.analyzer,
                    self.config.qoe,
                    self.pipeline_metrics.clone(),
                );
                analyzer.attach_journal(self.journal.clone(), flow_id, ts);
                analyzer.attach_trace(self.trace.clone());
                analyzer.attach_drift(self.drift.clone());
                let entry = FlowEntry {
                    analyzer,
                    key,
                    down_tuple,
                    platform,
                    started_at: ts,
                    last_seen: ts,
                    stats: FlowStats::default(),
                    flow_id,
                    model_version,
                };
                let slot = self.alloc_slot(entry);
                self.flows.insert(key, slot);
                self.metrics.active_flows.inc();
                self.journal.emit(
                    flow_id,
                    ts,
                    EventKind::FlowAdmitted {
                        addr: down_tuple.flow_addr(),
                        platform,
                    },
                );
                // Version stamp right after admission, so every later
                // decision in the timeline is attributable to a model
                // generation. Fixed bundles (version 0) skip the event —
                // nothing can swap, so there is nothing to attribute.
                if self.models.is_live() {
                    self.journal.emit(
                        flow_id,
                        ts,
                        EventKind::ModelVersion {
                            version: model_version,
                        },
                    );
                }
                // One Shard span per flow, at admission: the hand-off of
                // the flow to this monitor (one shard of the parallel
                // front end, or the whole serial one).
                if self.trace.is_enabled() {
                    self.trace.record(flow_id, 0, TraceStage::Shard, ts, 0);
                }
                slot
            }
        };
        let entry = self.arena[slot as usize].as_mut().expect("live slot");
        entry.last_seen = ts;
        self.expiry.touch(slot, ts);
        self.ingested_packets += 1;
        self.metrics.ingested.inc();
        // Rebase to flow-relative time for the analyzer.
        let mut pkt = Packet::new(ts.saturating_sub(entry.started_at), dir, payload_len);
        pkt.marker = false;
        entry.stats.update(&pkt);
        entry.analyzer.push_packet(&pkt);
    }

    /// Ingests a decoded capture record (the pcap reader's output).
    pub fn ingest_record(&mut self, record: &PcapRecord) {
        self.ingest(record.ts, &record.tuple, record.payload_len);
    }

    /// Ingests a batch of records (the sharded front end's unit of work),
    /// counting it in [`ShardStats::batches`].
    pub fn ingest_batch(&mut self, records: &[(Micros, FiveTuple, u32)]) {
        self.batches += 1;
        self.metrics.batches.inc();
        let batch_ns = std::sync::Arc::clone(&self.metrics.batch_ns);
        let span = batch_ns.span();
        for (ts, tuple, len) in records {
            self.ingest(*ts, tuple, *len);
        }
        span.finish();
    }

    /// Overrides the QoS context of one flow (e.g. when the gray-box QoE
    /// estimators have produced latency/loss measurements for it). Applies
    /// to QoE labels of slots closed after the call.
    pub fn set_qoe(&mut self, tuple: &FiveTuple, qoe: QoeInputs) {
        if let Some(&slot) = self.flows.get(&tuple.normalized()) {
            let e = self.arena[slot as usize].as_mut().expect("live slot");
            e.analyzer.set_qoe(qoe);
        }
    }

    /// Number of flows currently tracked.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Packets dropped for lacking a platform signature.
    pub fn ignored_packets(&self) -> u64 {
        self.ignored_packets
    }

    /// Snapshot of the monitor's observability counters.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            ingested_packets: self.ingested_packets,
            ignored_packets: self.ignored_packets,
            active_flows: self.flows.len() as u64,
            finalized_flows: self.finalized_flows,
            evicted_flows: self.evicted_flows,
            expiry_entries_scanned: self.expiry.entries_scanned(),
            batches: self.batches,
        }
    }

    /// Finalizes flows idle since before `now - idle_timeout`, returning
    /// their reports (plus any flows evicted at the cap since the last
    /// call). Work is proportional to the number of due flows: the expiry
    /// wheel only visits buckets behind the cutoff, never the whole table.
    pub fn finish_idle(&mut self, now: Micros) -> Vec<MonitoredSession> {
        let cutoff = now.saturating_sub(self.config.idle_timeout);
        let due = self.expiry.drain_due(cutoff);
        self.finalize_due(due)
    }

    /// Finalizes flows idle past the timeout *on the monitor's clock*
    /// (see [`set_clock`](Self::set_clock)) — the long-lived-deployment
    /// form of [`finish_idle`](Self::finish_idle), where "now" is wall
    /// time instead of a caller-supplied tap timestamp.
    pub fn finish_idle_now(&mut self) -> Vec<MonitoredSession> {
        let due = self.expiry.drain_idle(self.config.idle_timeout);
        self.finalize_due(due)
    }

    fn finalize_due(&mut self, due: Vec<u32>) -> Vec<MonitoredSession> {
        let mut out = std::mem::take(&mut self.evicted);
        for slot in due {
            let entry = self.take_slot(slot);
            out.push(self.finalize(entry, CloseCause::Idle));
        }
        self.publish_expiry_scans();
        out
    }

    /// Finalizes every remaining flow (end of capture), including flows
    /// evicted at the cap since the last `finish_idle`.
    pub fn finish_all(&mut self) -> Vec<MonitoredSession> {
        let mut out = std::mem::take(&mut self.evicted);
        let slots: Vec<u32> = self.flows.values().copied().collect();
        for slot in slots {
            self.expiry.remove(&slot);
            let entry = self.take_slot(slot);
            out.push(self.finalize(entry, CloseCause::Drained));
        }
        self.publish_expiry_scans();
        out
    }

    /// Stores `entry` in a reused (or fresh) arena slot.
    fn alloc_slot(&mut self, entry: FlowEntry<'b>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.arena[slot as usize] = Some(entry);
                slot
            }
            None => {
                let slot = u32::try_from(self.arena.len()).expect("flow arena fits u32");
                self.arena.push(Some(entry));
                slot
            }
        }
    }

    /// Removes `slot`'s entry from the arena and intern map, returning the
    /// slot to the free list.
    fn take_slot(&mut self, slot: u32) -> FlowEntry<'b> {
        let entry = self.arena[slot as usize]
            .take()
            .expect("wheel and table in sync");
        self.flows.remove(&entry.key);
        self.free.push(slot);
        entry
    }

    /// Publishes wheel-scan work accumulated since the last call to the
    /// registry counter (the wheel keeps the cumulative count used by
    /// [`ShardStats`]).
    fn publish_expiry_scans(&mut self) {
        let scanned = self.expiry.entries_scanned();
        let delta = scanned.saturating_sub(self.expiry_published);
        if delta > 0 {
            self.metrics.expiry_scanned.add(delta);
            self.expiry_published = scanned;
        }
    }

    /// Finalizes the least-recently-seen flow to make room at the cap.
    fn evict_least_recent(&mut self) {
        if let Some(slot) = self.expiry.pop_least_recent() {
            let entry = self.take_slot(slot);
            let session = self.finalize(entry, CloseCause::Evicted);
            self.evicted.push(session);
            self.evicted_flows += 1;
            self.metrics.evicted.inc();
        }
        self.publish_expiry_scans();
    }

    fn finalize(&mut self, entry: FlowEntry<'b>, cause: CloseCause) -> MonitoredSession {
        self.finalized_flows += 1;
        self.metrics.finalized.inc();
        self.metrics.active_flows.dec();
        let confirmed = self.filter.confirm(&entry.stats);
        let session = MonitoredSession {
            tuple: entry.down_tuple,
            platform: entry.platform,
            started_at: entry.started_at,
            last_seen: entry.last_seen,
            confirmed,
            model_version: entry.model_version,
            // finish() emits the analyzer's SessionVerdict first, so the
            // FlowClosed below is always each timeline's final event.
            report: entry.analyzer.finish(),
        };
        self.journal.emit(
            entry.flow_id,
            entry.last_seen,
            EventKind::FlowClosed { cause, confirmed },
        );
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelBundle;
    use cgc_domain::{GameTitle, StreamSettings};
    use gamesim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};

    fn bundle() -> ModelBundle {
        crate::pipeline::tests::tiny_bundle_for_streaming()
    }

    fn session(seed: u64, title: GameTitle) -> Session {
        let mut generator = SessionGenerator::new();
        generator.generate(&SessionConfig {
            kind: TitleKind::Known(title),
            settings: StreamSettings::default_pc(),
            gameplay_secs: 60.0,
            fidelity: Fidelity::FullPackets,
            seed,
        })
    }

    /// Wire-orients a session packet: upstream packets appear with the
    /// reversed tuple.
    fn wire(s: &Session, p: &Packet) -> FiveTuple {
        match p.dir {
            Direction::Downstream => s.tuple,
            Direction::Upstream => s.tuple.reversed(),
        }
    }

    #[test]
    fn demultiplexes_interleaved_sessions() {
        let b = bundle();
        let s1 = session(1, GameTitle::Fortnite);
        let s2 = session(2, GameTitle::GenshinImpact);

        // Interleave the two sessions on one tap, s2 starting 7 s later,
        // plus non-gaming chatter that the filter must reject.
        let mut feed: Vec<(Micros, FiveTuple, u32)> = Vec::new();
        for p in &s1.packets {
            feed.push((p.ts, wire(&s1, p), p.payload_len));
        }
        for p in &s2.packets {
            feed.push((p.ts + 7_000_000, wire(&s2, p), p.payload_len));
        }
        let dns = FiveTuple::udp_v4([8, 8, 8, 8], 53, [100, 64, 1, 1], 40_000);
        for i in 0..250u64 {
            feed.push((i * 100_000, dns, 120));
        }
        feed.sort_by_key(|(ts, _, _)| *ts);

        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        for (ts, tuple, len) in &feed {
            monitor.ingest(*ts, tuple, *len);
        }
        assert_eq!(monitor.active_flows(), 2);
        // The non-gaming flow was counted and dropped, nothing else.
        assert_eq!(monitor.ignored_packets(), 250);
        let stats = monitor.stats();
        assert_eq!(stats.ignored_packets, 250);
        assert_eq!(
            stats.ingested_packets as usize,
            feed.len() - 250,
            "every gaming packet reaches an analyzer"
        );
        let mut out = monitor.finish_all();
        out.sort_by_key(|m| m.started_at);
        assert_eq!(out.len(), 2);

        // Each flow got the same title call it would get alone.
        let solo = |s: &Session| b.title.classify(&s.launch_window(5.0)).title;
        assert_eq!(out[0].report.title.title, solo(&s1));
        assert_eq!(out[1].report.title.title, solo(&s2));
        assert!(out.iter().all(|m| m.confirmed));
        assert!(out.iter().all(|m| m.platform == Platform::GeForceNow));
        assert_eq!(monitor.stats().finalized_flows, 2);
    }

    #[test]
    fn non_gaming_traffic_is_ignored() {
        let b = bundle();
        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        let web = FiveTuple::udp_v4([1, 1, 1, 1], 443, [10, 0, 0, 2], 55_000);
        for i in 0..100u64 {
            monitor.ingest(i * 1000, &web, 1200);
        }
        assert_eq!(monitor.active_flows(), 0);
        assert_eq!(monitor.ignored_packets(), 100);
    }

    #[test]
    fn idle_flows_are_finalized() {
        let b = bundle();
        let s = session(3, GameTitle::CsGo);
        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        for p in &s.packets {
            monitor.ingest(p.ts, &wire(&s, p), p.payload_len);
        }
        let last = s.packets.last().unwrap().ts;
        // Not yet idle long enough.
        assert!(monitor.finish_idle(last + 10_000_000).is_empty());
        assert_eq!(monitor.active_flows(), 1);
        // Past the 60 s timeout.
        let out = monitor.finish_idle(last + 61_000_000);
        assert_eq!(out.len(), 1);
        assert_eq!(monitor.active_flows(), 0);
        assert!(out[0].confirmed);
    }

    #[test]
    fn finish_idle_work_scales_with_due_flows() {
        // Many live flows, one idle: the expiry pass must not examine the
        // whole table (the old implementation scanned every flow).
        let b = bundle();
        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        let mk = |i: u16| FiveTuple::udp_v4([10, 0, 0, 1], 49003, [100, 64, 1, 1], 50_000 + i);
        monitor.ingest(0, &mk(0), 1200); // goes idle
        for i in 1..400u16 {
            monitor.ingest(200_000_000 + u64::from(i), &mk(i), 1200);
        }
        assert_eq!(monitor.active_flows(), 400);
        let before = monitor.stats().expiry_entries_scanned;
        let out = monitor.finish_idle(100_000_000);
        assert_eq!(out.len(), 1);
        let examined = monitor.stats().expiry_entries_scanned - before;
        assert!(
            examined < 10,
            "examined {examined} wheel entries to expire 1 of 400 flows"
        );
        assert_eq!(monitor.active_flows(), 399);
    }

    #[test]
    fn finish_idle_now_expires_on_virtual_time() {
        use nettrace::clock::VirtualClock;
        let b = bundle();
        let s = session(7, GameTitle::Fortnite);
        let clock = VirtualClock::starting_at(0);
        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        monitor.set_clock(clock.shared());
        for p in &s.packets {
            monitor.ingest(p.ts, &wire(&s, p), p.payload_len);
        }
        let last = s.packets.last().unwrap().ts;
        // Clock sits just past the last packet: nothing is idle yet.
        clock.advance_to(last + 10_000_000);
        assert!(monitor.finish_idle_now().is_empty());
        assert_eq!(monitor.active_flows(), 1);
        // One virtual jump past the 60 s timeout — instant, no wall wait.
        clock.advance_to(last + 61_000_000);
        let out = monitor.finish_idle_now();
        assert_eq!(out.len(), 1);
        assert!(out[0].confirmed);
        assert_eq!(monitor.active_flows(), 0);
    }

    #[test]
    fn cap_evicts_least_recently_seen() {
        let b = bundle();
        let config = MonitorConfig {
            max_flows: 2,
            ..MonitorConfig::default()
        };
        let mut monitor = TapMonitor::new(&b, config);
        let mk = |i: u16| FiveTuple::udp_v4([10, 0, 0, 1], 49003, [100, 64, 1, 1], 50_000 + i);
        monitor.ingest(1_000, &mk(0), 1200);
        monitor.ingest(2_000, &mk(1), 1200);
        monitor.ingest(3_000, &mk(0), 1200); // flow 0 seen again: flow 1 is now LRS
        assert_eq!(monitor.active_flows(), 2);
        assert_eq!(monitor.stats().evicted_flows, 0);

        // A third flow at the cap evicts the least-recently-seen (flow 1).
        monitor.ingest(4_000, &mk(2), 1200);
        assert_eq!(monitor.active_flows(), 2);
        let stats = monitor.stats();
        assert_eq!(stats.evicted_flows, 1);
        assert_eq!(stats.finalized_flows, 1);

        // The evicted session surfaces on the next finalize call and is the
        // right flow.
        let out = monitor.finish_idle(5_000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple.normalized(), mk(1).normalized());
        // Remaining flows are 0 and 2.
        let mut rest = monitor.finish_all();
        rest.sort_by_key(|m| m.started_at);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].tuple.normalized(), mk(0).normalized());
        assert_eq!(rest[1].tuple.normalized(), mk(2).normalized());
        assert_eq!(monitor.stats().finalized_flows, 3);
    }

    #[test]
    fn late_flow_start_rebases_timestamps() {
        let b = bundle();
        let s = session(4, GameTitle::Dota2);
        let offset = 3_600_000_000u64; // flow starts an hour into the tap
        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        for p in &s.packets {
            monitor.ingest(p.ts + offset, &wire(&s, p), p.payload_len);
        }
        let out = monitor.finish_all();
        assert_eq!(out.len(), 1);
        // started_at is the first *observed* packet (launch phase shift
        // means it is not exactly at the session origin).
        assert!(out[0].started_at >= offset && out[0].started_at < offset + 4_000_000);
        // Slots counted from flow start, not tap start.
        let expected = (s.duration() / out[0].report.slot_width) as usize;
        assert!(out[0].report.stage_slots.len() <= expected + 2);
        assert!(out[0].report.stage_slots.len() + 5 >= expected);
    }

    #[test]
    fn trace_spans_cover_shard_slot_classifier_verdict() {
        use cgc_obs::{Registry, TraceCollector, TraceConfig};
        let b = bundle();
        let s = session(9, GameTitle::Fortnite);
        let registry = Registry::new();
        let (sink, mut collector) = TraceCollector::new(
            TraceConfig {
                max_spans_per_flow: 4096,
                ..TraceConfig::default()
            },
            &registry,
        );
        let mut monitor = TapMonitor::with_registry(&b, MonitorConfig::default(), &registry);
        monitor.set_trace(sink);
        for p in &s.packets {
            monitor.ingest(p.ts, &wire(&s, p), p.payload_len);
        }
        let out = monitor.finish_all();
        assert_eq!(out.len(), 1);
        collector.drain();
        let flow = s.tuple.normalized().flow_id();
        let timeline = collector.timeline(flow).expect("flow traced");
        let chain = timeline.causal_chain();
        for stage in [
            TraceStage::Shard,
            TraceStage::Slot,
            TraceStage::Classifier,
            TraceStage::Verdict,
        ] {
            assert!(
                chain.iter().any(|s| s.stage == stage),
                "missing {stage} span in {chain:?}"
            );
        }
        // The chain is stage-ordered: Shard precedes every Slot span,
        // Verdict is last.
        assert_eq!(chain.first().unwrap().stage, TraceStage::Shard);
        assert_eq!(chain.last().unwrap().stage, TraceStage::Verdict);
        // Exactly one span per classified slot.
        let slots = chain.iter().filter(|s| s.stage == TraceStage::Slot).count();
        assert_eq!(
            slots + 10,
            out[0].report.stage_slots.len(),
            "seed slots untraced"
        );
    }

    #[test]
    fn sampled_out_flows_record_no_spans() {
        use cgc_obs::{Registry, TraceCollector, TraceConfig};
        let b = bundle();
        let s = session(9, GameTitle::Fortnite);
        let registry = Registry::new();
        // A sample modulus no real flow hash will satisfy unless it is 0:
        // flow ids are FNV hashes, so `flow % u64::MAX == 0` only for 0.
        let (sink, mut collector) =
            TraceCollector::new(TraceConfig::default().with_sample(u64::MAX), &registry);
        let mut monitor = TapMonitor::with_registry(&b, MonitorConfig::default(), &registry);
        monitor.set_trace(sink);
        for p in &s.packets {
            monitor.ingest(p.ts, &wire(&s, p), p.payload_len);
        }
        monitor.finish_all();
        collector.drain();
        assert!(collector.timelines().is_empty(), "sampled-out flow traced");
        assert_eq!(
            registry.snapshot().counter("cgc_trace_spans_total"),
            Some(0)
        );
    }

    #[test]
    fn set_qoe_overrides_labels() {
        let b = bundle();
        let s = session(5, GameTitle::R6Siege);
        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        // Feed the first half, then report degraded QoS, then the rest.
        let mid = s.packets.len() / 2;
        for p in &s.packets[..mid] {
            monitor.ingest(p.ts, &wire(&s, p), p.payload_len);
        }
        monitor.set_qoe(
            &s.tuple,
            QoeInputs {
                latency_ms: 150.0,
                loss_rate: 0.05,
                ..QoeInputs::default()
            },
        );
        for p in &s.packets[mid..] {
            monitor.ingest(p.ts, &wire(&s, p), p.payload_len);
        }
        let out = monitor.finish_all();
        // Later slots carry bad labels, so the session skews bad.
        assert_eq!(out[0].report.objective_qoe, cgc_domain::QoeLevel::Bad);
    }
}
