//! Tap-level monitoring of many concurrent sessions.
//!
//! The pipeline of Fig. 6 does not see one flow at a time — it sits on an
//! ISP link where packets of many subscribers' sessions interleave.
//! [`TapMonitor`] is that front end: it keys flows by normalized
//! five-tuple, uses the platform port signatures to orient each flow
//! (server side ⇒ downstream) and to reject non-gaming traffic, rebases
//! timestamps to each flow's start, and drives one [`SessionAnalyzer`] per
//! accepted flow. Flows idle past a timeout are finalized and their
//! [`SessionReport`]s emitted — exactly how an operator turns a raw packet
//! feed into per-session context records.

use std::collections::HashMap;

use nettrace::flow::FlowStats;
use nettrace::packet::{Direction, FiveTuple, Packet};
use nettrace::pcap::PcapRecord;
use nettrace::units::Micros;

use crate::bundle::ModelBundle;
use crate::filter::{CloudGamingFilter, FilterConfig, Platform};
use crate::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer, SessionReport};

/// Tap monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Per-flow analyzer configuration.
    pub analyzer: AnalyzerConfig,
    /// Flow filter thresholds.
    pub filter: FilterConfig,
    /// A flow idle for this long is finalized (microseconds).
    pub idle_timeout: Micros,
    /// Default QoS context for QoE labeling (override per flow with
    /// [`TapMonitor::set_qoe`]).
    pub qoe: QoeInputs,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            analyzer: AnalyzerConfig::default(),
            filter: FilterConfig::default(),
            idle_timeout: 60_000_000, // 60 s
            qoe: QoeInputs::default(),
        }
    }
}

/// A finalized session observed at the tap.
#[derive(Debug, Clone)]
pub struct MonitoredSession {
    /// The session five-tuple in downstream orientation.
    pub tuple: FiveTuple,
    /// Detected platform.
    pub platform: Platform,
    /// Tap timestamp of the flow's first packet.
    pub started_at: Micros,
    /// Tap timestamp of the flow's last packet.
    pub last_seen: Micros,
    /// Whether the volumetric confirmation ever passed (flows that never
    /// looked like streaming still get a report, flagged here).
    pub confirmed: bool,
    /// The pipeline's report.
    pub report: SessionReport,
}

struct FlowEntry<'b> {
    analyzer: SessionAnalyzer<'b>,
    down_tuple: FiveTuple,
    platform: Platform,
    started_at: Micros,
    last_seen: Micros,
    stats: FlowStats,
}

/// Multiplexing front end driving one analyzer per detected gaming flow.
pub struct TapMonitor<'b> {
    bundle: &'b ModelBundle,
    config: MonitorConfig,
    filter: CloudGamingFilter,
    flows: HashMap<FiveTuple, FlowEntry<'b>>,
    ignored_packets: u64,
}

impl<'b> TapMonitor<'b> {
    /// A monitor over a trained bundle.
    pub fn new(bundle: &'b ModelBundle, config: MonitorConfig) -> Self {
        TapMonitor {
            bundle,
            config,
            filter: CloudGamingFilter::new(config.filter),
            flows: HashMap::new(),
            ignored_packets: 0,
        }
    }

    /// Ingests one observed datagram: tap timestamp, wire five-tuple (src =
    /// sender) and RTP payload length. Packets of flows without a platform
    /// port signature are counted and dropped.
    pub fn ingest(&mut self, ts: Micros, wire_tuple: &FiveTuple, payload_len: u32) {
        // Orient the conversation: the platform-signature port is the server.
        let (down_tuple, platform, dir) = if let Some(p) = Platform::from_port(wire_tuple.src_port)
        {
            (*wire_tuple, p, Direction::Downstream)
        } else if let Some(p) = Platform::from_port(wire_tuple.dst_port) {
            (wire_tuple.reversed(), p, Direction::Upstream)
        } else {
            self.ignored_packets += 1;
            return;
        };
        if self.filter.pre_check(&down_tuple).is_none() {
            self.ignored_packets += 1;
            return;
        }

        let key = down_tuple.normalized();
        let config = &self.config;
        let bundle = self.bundle;
        let entry = self.flows.entry(key).or_insert_with(|| FlowEntry {
            analyzer: SessionAnalyzer::new(bundle, config.analyzer, config.qoe),
            down_tuple,
            platform,
            started_at: ts,
            last_seen: ts,
            stats: FlowStats::default(),
        });
        entry.last_seen = ts;
        // Rebase to flow-relative time for the analyzer.
        let mut pkt = Packet::new(ts.saturating_sub(entry.started_at), dir, payload_len);
        pkt.marker = false;
        entry.stats.update(&pkt);
        entry.analyzer.push_packet(&pkt);
    }

    /// Ingests a decoded capture record (the pcap reader's output).
    pub fn ingest_record(&mut self, record: &PcapRecord) {
        self.ingest(record.ts, &record.tuple, record.payload_len);
    }

    /// Overrides the QoS context of one flow (e.g. when the gray-box QoE
    /// estimators have produced latency/loss measurements for it). Applies
    /// to QoE labels of slots closed after the call.
    pub fn set_qoe(&mut self, tuple: &FiveTuple, qoe: QoeInputs) {
        if let Some(e) = self.flows.get_mut(&tuple.normalized()) {
            e.analyzer.set_qoe(qoe);
        }
    }

    /// Number of flows currently tracked.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Packets dropped for lacking a platform signature.
    pub fn ignored_packets(&self) -> u64 {
        self.ignored_packets
    }

    /// Finalizes flows idle since before `now - idle_timeout`, returning
    /// their reports.
    pub fn finish_idle(&mut self, now: Micros) -> Vec<MonitoredSession> {
        let cutoff = now.saturating_sub(self.config.idle_timeout);
        let expired: Vec<FiveTuple> = self
            .flows
            .iter()
            .filter(|(_, e)| e.last_seen < cutoff)
            .map(|(k, _)| *k)
            .collect();
        expired
            .into_iter()
            .map(|k| {
                let entry = self.flows.remove(&k).expect("key present");
                self.finalize(entry)
            })
            .collect()
    }

    /// Finalizes every remaining flow (end of capture).
    pub fn finish_all(mut self) -> Vec<MonitoredSession> {
        let keys: Vec<FiveTuple> = self.flows.keys().copied().collect();
        keys.into_iter()
            .map(|k| {
                let entry = self.flows.remove(&k).expect("key present");
                self.finalize(entry)
            })
            .collect()
    }

    fn finalize(&self, entry: FlowEntry<'b>) -> MonitoredSession {
        let confirmed = self.filter.confirm(&entry.stats);
        MonitoredSession {
            tuple: entry.down_tuple,
            platform: entry.platform,
            started_at: entry.started_at,
            last_seen: entry.last_seen,
            confirmed,
            report: entry.analyzer.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_domain::{GameTitle, StreamSettings};
    use gamesim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};

    fn bundle() -> ModelBundle {
        crate::pipeline::tests::tiny_bundle_for_streaming()
    }

    fn session(seed: u64, title: GameTitle) -> Session {
        let mut generator = SessionGenerator::new();
        generator.generate(&SessionConfig {
            kind: TitleKind::Known(title),
            settings: StreamSettings::default_pc(),
            gameplay_secs: 60.0,
            fidelity: Fidelity::FullPackets,
            seed,
        })
    }

    /// Wire-orients a session packet: upstream packets appear with the
    /// reversed tuple.
    fn wire(s: &Session, p: &Packet) -> FiveTuple {
        match p.dir {
            Direction::Downstream => s.tuple,
            Direction::Upstream => s.tuple.reversed(),
        }
    }

    #[test]
    fn demultiplexes_interleaved_sessions() {
        let b = bundle();
        let s1 = session(1, GameTitle::Fortnite);
        let s2 = session(2, GameTitle::GenshinImpact);

        // Interleave the two sessions on one tap, s2 starting 7 s later.
        let mut feed: Vec<(Micros, FiveTuple, u32)> = Vec::new();
        for p in &s1.packets {
            feed.push((p.ts, wire(&s1, p), p.payload_len));
        }
        for p in &s2.packets {
            feed.push((p.ts + 7_000_000, wire(&s2, p), p.payload_len));
        }
        feed.sort_by_key(|(ts, _, _)| *ts);

        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        for (ts, tuple, len) in &feed {
            monitor.ingest(*ts, tuple, *len);
        }
        assert_eq!(monitor.active_flows(), 2);
        let mut out = monitor.finish_all();
        out.sort_by_key(|m| m.started_at);
        assert_eq!(out.len(), 2);

        // Each flow got the same title call it would get alone.
        let solo = |s: &Session| b.title.classify(&s.launch_window(5.0)).title;
        assert_eq!(out[0].report.title.title, solo(&s1));
        assert_eq!(out[1].report.title.title, solo(&s2));
        assert!(out.iter().all(|m| m.confirmed));
        assert!(out.iter().all(|m| m.platform == Platform::GeForceNow));
        assert_eq!(monitor_ignored(&feed), 0);
    }

    fn monitor_ignored(_: &[(Micros, FiveTuple, u32)]) -> u64 {
        0
    }

    #[test]
    fn non_gaming_traffic_is_ignored() {
        let b = bundle();
        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        let web = FiveTuple::udp_v4([1, 1, 1, 1], 443, [10, 0, 0, 2], 55_000);
        for i in 0..100u64 {
            monitor.ingest(i * 1000, &web, 1200);
        }
        assert_eq!(monitor.active_flows(), 0);
        assert_eq!(monitor.ignored_packets(), 100);
    }

    #[test]
    fn idle_flows_are_finalized() {
        let b = bundle();
        let s = session(3, GameTitle::CsGo);
        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        for p in &s.packets {
            monitor.ingest(p.ts, &wire(&s, p), p.payload_len);
        }
        let last = s.packets.last().unwrap().ts;
        // Not yet idle long enough.
        assert!(monitor.finish_idle(last + 10_000_000).is_empty());
        assert_eq!(monitor.active_flows(), 1);
        // Past the 60 s timeout.
        let out = monitor.finish_idle(last + 61_000_000);
        assert_eq!(out.len(), 1);
        assert_eq!(monitor.active_flows(), 0);
        assert!(out[0].confirmed);
    }

    #[test]
    fn late_flow_start_rebases_timestamps() {
        let b = bundle();
        let s = session(4, GameTitle::Dota2);
        let offset = 3_600_000_000u64; // flow starts an hour into the tap
        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        for p in &s.packets {
            monitor.ingest(p.ts + offset, &wire(&s, p), p.payload_len);
        }
        let out = monitor.finish_all();
        assert_eq!(out.len(), 1);
        // started_at is the first *observed* packet (launch phase shift
        // means it is not exactly at the session origin).
        assert!(out[0].started_at >= offset && out[0].started_at < offset + 4_000_000);
        // Slots counted from flow start, not tap start.
        let expected = (s.duration() / out[0].report.slot_width) as usize;
        assert!(out[0].report.stage_slots.len() <= expected + 2);
        assert!(out[0].report.stage_slots.len() + 5 >= expected);
    }

    #[test]
    fn set_qoe_overrides_labels() {
        let b = bundle();
        let s = session(5, GameTitle::R6Siege);
        let mut monitor = TapMonitor::new(&b, MonitorConfig::default());
        // Feed the first half, then report degraded QoS, then the rest.
        let mid = s.packets.len() / 2;
        for p in &s.packets[..mid] {
            monitor.ingest(p.ts, &wire(&s, p), p.payload_len);
        }
        monitor.set_qoe(
            &s.tuple,
            QoeInputs {
                latency_ms: 150.0,
                loss_rate: 0.05,
                ..QoeInputs::default()
            },
        );
        for p in &s.packets[mid..] {
            monitor.ingest(p.ts, &wire(&s, p), p.payload_len);
        }
        let out = monitor.finish_all();
        // Later slots carry bad labels, so the session skews bad.
        assert_eq!(out[0].report.objective_qoe, cgc_domain::QoeLevel::Bad);
    }
}
