//! Trained model bundles.
//!
//! Everything the real-time pipeline needs at inference time, packaged for
//! serialization: the three classifiers, the feature/slot configuration
//! they were trained with, the objective QoE thresholds and the learned
//! demand calibration table. Deployments train once (see
//! `cgc-deploy::train`), persist the bundle as JSON, and load it at the
//! tap.

use cgc_lifecycle::{Artifact, LiveModel, ModelDescriptor};
use mlcore::Classifier;
use nettrace::units::{Micros, MICROS_PER_SEC};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use std::sync::Arc;

use cgc_features::vol_attrs::StageFeatureConfig;

use crate::pattern::PatternInferrer;
use crate::qoe::{CalibrationTable, ObjectiveThresholds};
use crate::stage::StageClassifier;
use crate::title::TitleClassifier;

/// A complete trained pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Game title classifier (launch window).
    pub title: TitleClassifier,
    /// Player activity stage classifier (per slot).
    pub stage: StageClassifier,
    /// Gameplay activity pattern inferrer (transition features).
    pub pattern: PatternInferrer,
    /// Stage feature extraction configuration (α, peak seeding).
    pub stage_feature: StageFeatureConfig,
    /// Stage classification slot width `I`, microseconds.
    pub stage_slot: Micros,
    /// Objective QoE expected ranges.
    pub thresholds: ObjectiveThresholds,
    /// Learned context demand table for effective QoE.
    pub calibration: CalibrationTable,
}

impl ModelBundle {
    /// The deployed stage slot width: `I = 1 s`.
    pub const DEFAULT_STAGE_SLOT: Micros = MICROS_PER_SEC;

    /// Serializes the bundle to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes a bundle from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<ModelBundle> {
        serde_json::from_str(s)
    }

    /// Writes the bundle to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a bundle from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<ModelBundle> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(io::Error::other)
    }
}

impl Artifact for ModelBundle {
    fn descriptors(&self) -> Vec<ModelDescriptor> {
        vec![
            ModelDescriptor {
                model: "title".into(),
                n_classes: self.title.forest().n_classes(),
                flat_checksum: self.title.flat_checksum(),
            },
            ModelDescriptor {
                model: "stage".into(),
                n_classes: self.stage.forest().n_classes(),
                flat_checksum: self.stage.flat_checksum(),
            },
            ModelDescriptor {
                model: "pattern".into(),
                n_classes: self.pattern.forest().n_classes(),
                flat_checksum: self.pattern.flat_checksum(),
            },
        ]
    }
}

/// Where a monitor gets its models: a fixed bundle reference (the
/// pre-lifecycle deployment shape) or a hot-swappable [`LiveModel`]
/// slot. `Copy`, so it threads through constructors like the plain
/// reference used to.
///
/// Every flow **pins** at admission: one [`ModelSource::pin`] call
/// resolves the source to a concrete `&ModelBundle` plus the registry
/// version it was published under (0 for fixed bundles). In-flight
/// flows therefore finish on the version they started with while a
/// concurrent publish redirects only new admissions — zero stall, no
/// torn reads.
#[derive(Debug, Clone, Copy)]
pub enum ModelSource<'b> {
    /// A fixed bundle, never swapped (version 0).
    Fixed(&'b ModelBundle),
    /// A hot-swappable versioned slot.
    Live(&'b LiveModel<ModelBundle>),
}

impl<'b> ModelSource<'b> {
    /// Resolves to the bundle serving *right now* plus its registry
    /// version. One atomic load on the `Live` arm; free on `Fixed`.
    pub fn pin(self) -> (&'b ModelBundle, u32) {
        match self {
            ModelSource::Fixed(bundle) => (bundle, 0),
            ModelSource::Live(slot) => {
                let pinned = slot.load();
                (pinned.value(), pinned.version())
            }
        }
    }

    /// True when decisions should be stamped with a model version
    /// (i.e. the source can actually swap).
    pub fn is_live(self) -> bool {
        matches!(self, ModelSource::Live(_))
    }
}

impl<'b> From<&'b ModelBundle> for ModelSource<'b> {
    fn from(bundle: &'b ModelBundle) -> ModelSource<'b> {
        ModelSource::Fixed(bundle)
    }
}

impl<'b> From<&'b Arc<ModelBundle>> for ModelSource<'b> {
    fn from(bundle: &'b Arc<ModelBundle>) -> ModelSource<'b> {
        ModelSource::Fixed(bundle)
    }
}

impl<'b> From<&'b LiveModel<ModelBundle>> for ModelSource<'b> {
    fn from(slot: &'b LiveModel<ModelBundle>) -> ModelSource<'b> {
        ModelSource::Live(slot)
    }
}

impl<'b> From<&'b Arc<LiveModel<ModelBundle>>> for ModelSource<'b> {
    fn from(slot: &'b Arc<LiveModel<ModelBundle>>) -> ModelSource<'b> {
        ModelSource::Live(slot)
    }
}
