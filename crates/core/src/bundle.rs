//! Trained model bundles.
//!
//! Everything the real-time pipeline needs at inference time, packaged for
//! serialization: the three classifiers, the feature/slot configuration
//! they were trained with, the objective QoE thresholds and the learned
//! demand calibration table. Deployments train once (see
//! `cgc-deploy::train`), persist the bundle as JSON, and load it at the
//! tap.

use nettrace::units::{Micros, MICROS_PER_SEC};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

use cgc_features::vol_attrs::StageFeatureConfig;

use crate::pattern::PatternInferrer;
use crate::qoe::{CalibrationTable, ObjectiveThresholds};
use crate::stage::StageClassifier;
use crate::title::TitleClassifier;

/// A complete trained pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Game title classifier (launch window).
    pub title: TitleClassifier,
    /// Player activity stage classifier (per slot).
    pub stage: StageClassifier,
    /// Gameplay activity pattern inferrer (transition features).
    pub pattern: PatternInferrer,
    /// Stage feature extraction configuration (α, peak seeding).
    pub stage_feature: StageFeatureConfig,
    /// Stage classification slot width `I`, microseconds.
    pub stage_slot: Micros,
    /// Objective QoE expected ranges.
    pub thresholds: ObjectiveThresholds,
    /// Learned context demand table for effective QoE.
    pub calibration: CalibrationTable,
}

impl ModelBundle {
    /// The deployed stage slot width: `I = 1 s`.
    pub const DEFAULT_STAGE_SLOT: Micros = MICROS_PER_SEC;

    /// Serializes the bundle to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes a bundle from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<ModelBundle> {
        serde_json::from_str(s)
    }

    /// Writes the bundle to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a bundle from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<ModelBundle> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(io::Error::other)
    }
}
