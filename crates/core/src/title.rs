//! Game title classification (§4.2).
//!
//! A Random Forest over the packet-group attributes of the first `N`
//! seconds of a streaming flow. Predictions whose vote confidence falls
//! below the threshold are reported as *unknown* — the paper observes that
//! most misclassified sessions carry confidence under 40 %, so unknown
//! gating both absorbs out-of-catalog titles and suppresses unreliable
//! in-catalog calls (§4.4.1).

use cgc_domain::GameTitle;
use cgc_features::launch_attrs::{launch_attributes, LaunchAttrConfig};
use mlcore::forest::{RandomForest, RandomForestConfig};
use mlcore::{argmax, Classifier, Dataset, FlatForest};
use nettrace::packet::Packet;
use serde::{Deserialize, Serialize, Value};

/// Title classifier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TitleClassifierConfig {
    /// Launch attribute extraction parameters (`N`, `T`, `V`).
    pub attr: LaunchAttrConfig,
    /// Forest hyperparameters. The paper deploys 500 trees at depth 10;
    /// the default here is 150 trees (same accuracy on our data, faster).
    pub forest: RandomForestConfig,
    /// Minimum vote confidence to report a title (below → unknown).
    pub confidence_threshold: f64,
}

impl Default for TitleClassifierConfig {
    fn default() -> Self {
        TitleClassifierConfig {
            attr: LaunchAttrConfig::default(),
            forest: RandomForestConfig {
                n_trees: 150,
                max_depth: 10,
                ..Default::default()
            },
            // The paper observes misclassified sessions carry < 40 %
            // confidence; on our traffic the separation sits higher
            // (catalog sessions p10 ≈ 0.9, out-of-catalog max ≈ 0.63), so
            // the deployed gate is 0.65.
            confidence_threshold: 0.65,
        }
    }
}

/// Outcome of classifying one session's launch window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TitlePrediction {
    /// The classified catalog title, or `None` for "unknown".
    pub title: Option<GameTitle>,
    /// Vote confidence of the top class (even when reported unknown).
    pub confidence: f64,
}

/// A trained game title classifier.
///
/// Inference runs on the [`FlatForest`] compiled from the trained forest;
/// the flat form is rebuilt on deserialization, so the wire format is
/// unchanged from the pointer-only version.
#[derive(Debug, Clone)]
pub struct TitleClassifier {
    forest: RandomForest,
    flat: FlatForest,
    config: TitleClassifierConfig,
}

impl Serialize for TitleClassifier {
    fn to_value(&self) -> Value {
        // Mirror the old derived `{ forest, config }` layout.
        Value::Object(vec![
            ("forest".to_string(), self.forest.to_value()),
            ("config".to_string(), self.config.to_value()),
        ])
    }
}

impl Deserialize for TitleClassifier {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let forest = RandomForest::from_value(v.field("forest")?)?;
        let config = TitleClassifierConfig::from_value(v.field("config")?)?;
        Ok(TitleClassifier::from_parts(forest, config))
    }
}

impl TitleClassifier {
    /// Trains on a dataset whose class ids are [`GameTitle::index`] values.
    ///
    /// # Panics
    /// Panics if the dataset's feature width does not match the attribute
    /// configuration.
    pub fn train(data: &Dataset, config: TitleClassifierConfig) -> TitleClassifier {
        assert_eq!(
            data.n_features(),
            config.attr.n_attributes(),
            "dataset width does not match attribute config"
        );
        Self::from_parts(RandomForest::fit(data, &config.forest), config)
    }

    fn from_parts(forest: RandomForest, config: TitleClassifierConfig) -> TitleClassifier {
        let flat = forest.to_flat();
        TitleClassifier {
            forest,
            flat,
            config,
        }
    }

    /// Classifies from a pre-extracted attribute vector.
    pub fn classify_features(&self, attrs: &[f64]) -> TitlePrediction {
        self.classify_features_scored(attrs).0
    }

    /// [`classify_features`](Self::classify_features) plus the top-1
    /// margin (top vote share minus runner-up share) — the label-free
    /// drift signal, computed from the same probability pass at no extra
    /// inference cost.
    pub fn classify_features_scored(&self, attrs: &[f64]) -> (TitlePrediction, f64) {
        let mut proba = vec![0.0f64; self.flat.n_classes()];
        self.flat.predict_proba_into(attrs, &mut proba);
        let best = argmax(&proba);
        let conf = proba.get(best).copied().unwrap_or(0.0);
        let runner_up = proba
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != best)
            .map(|(_, &p)| p)
            .fold(0.0f64, f64::max);
        let prediction = TitlePrediction {
            title: (conf >= self.config.confidence_threshold)
                .then(|| GameTitle::from_index(best))
                .flatten(),
            confidence: conf,
        };
        (prediction, (conf - runner_up).max(0.0))
    }

    /// Classifies from the raw packets of a flow's first seconds
    /// (timestamps relative to flow start).
    pub fn classify(&self, packets: &[Packet]) -> TitlePrediction {
        self.classify_scored(packets).0
    }

    /// [`classify`](Self::classify) plus the top-1 margin.
    pub fn classify_scored(&self, packets: &[Packet]) -> (TitlePrediction, f64) {
        let attrs = launch_attributes(packets, &self.config.attr);
        self.classify_features_scored(&attrs)
    }

    /// The attribute configuration the model was trained with.
    pub fn attr_config(&self) -> &LaunchAttrConfig {
        &self.config.attr
    }

    /// Access to the underlying forest (for importance analyses).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Content digest of the compiled inference forest (model-registry
    /// artifact verification).
    pub fn flat_checksum(&self) -> u64 {
        self.flat.checksum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_domain::StreamSettings;
    use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};

    /// Builds a small labeled launch-attribute dataset from gamesim.
    fn tiny_dataset(titles: &[GameTitle], per_title: usize, seed0: u64) -> Dataset {
        let cfg = LaunchAttrConfig::default();
        let mut generator = SessionGenerator::new();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (k, &t) in titles.iter().enumerate() {
            for i in 0..per_title {
                let s = generator.generate(&SessionConfig {
                    kind: TitleKind::Known(t),
                    settings: StreamSettings::default_pc(),
                    gameplay_secs: 1.0,
                    fidelity: Fidelity::LaunchOnly,
                    seed: seed0 + (k * 1000 + i) as u64,
                });
                x.push(launch_attributes(&s.launch_window(5.0), &cfg));
                y.push(t.index());
            }
        }
        Dataset::new(x, y).with_n_classes(GameTitle::ALL.len())
    }

    #[test]
    fn learns_to_separate_titles() {
        let titles = [
            GameTitle::Fortnite,
            GameTitle::GenshinImpact,
            GameTitle::Hearthstone,
        ];
        let train = tiny_dataset(&titles, 8, 0);
        let test = tiny_dataset(&titles, 4, 9999);
        let clf = TitleClassifier::train(
            &train,
            TitleClassifierConfig {
                forest: RandomForestConfig {
                    n_trees: 40,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let mut correct = 0;
        for (xi, yi) in test.x.iter().zip(&test.y) {
            let p = clf.classify_features(xi);
            if p.title.map(|t| t.index()) == Some(*yi) {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn low_confidence_reports_unknown() {
        let titles = [GameTitle::Fortnite, GameTitle::CsGo];
        let train = tiny_dataset(&titles, 6, 0);
        let clf = TitleClassifier::train(
            &train,
            TitleClassifierConfig {
                confidence_threshold: 1.01, // impossible bar
                forest: RandomForestConfig {
                    n_trees: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let p = clf.classify_features(&train.x[0]);
        assert!(p.title.is_none());
        assert!(p.confidence > 0.0);
    }

    #[test]
    fn classify_matches_classify_features() {
        let titles = [GameTitle::Dota2, GameTitle::R6Siege];
        let train = tiny_dataset(&titles, 5, 3);
        let clf = TitleClassifier::train(
            &train,
            TitleClassifierConfig {
                forest: RandomForestConfig {
                    n_trees: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let mut generator = SessionGenerator::new();
        let s = generator.generate(&SessionConfig {
            kind: TitleKind::Known(GameTitle::Dota2),
            settings: StreamSettings::default_pc(),
            gameplay_secs: 1.0,
            fidelity: Fidelity::LaunchOnly,
            seed: 777,
        });
        let pkts = s.launch_window(5.0);
        let a = clf.classify(&pkts);
        let b = clf.classify_features(&launch_attributes(&pkts, clf.attr_config()));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "does not match attribute config")]
    fn wrong_width_dataset_panics() {
        let d = Dataset::new(vec![vec![1.0, 2.0]], vec![0]);
        let _ = TitleClassifier::train(&d, TitleClassifierConfig::default());
    }
}
