//! # cgc-core — the cloud gaming context classification pipeline
//!
//! The paper's primary contribution (Fig. 6): a real-time network traffic
//! analysis method that classifies the *context* of cloud game streaming
//! sessions — game title, player activity stage and gameplay activity
//! pattern — and uses it to turn objective QoE into **effective QoE**.
//!
//! * [`filter`] — selects cloud game streaming flows (platform port
//!   signatures + RTP validation + volumetric confirmation).
//! * [`title`] — classifies the game title from the first `N = 5` seconds
//!   of launch traffic with a Random Forest over packet-group attributes;
//!   low-confidence results are reported *unknown*.
//! * [`stage`] — continuously classifies the player activity stage per
//!   `I = 1` second slot from EMA-smoothed peak-relative volumetrics.
//! * [`pattern`] — infers the gameplay activity pattern from the 3×3 stage
//!   transition matrix once confidence exceeds 75 %.
//! * [`qoe`] — objective QoE from fixed expected ranges, effective QoE
//!   from context-calibrated ranges.
//! * [`pipeline`] — [`pipeline::SessionAnalyzer`] wires everything
//!   together per session.
//! * [`monitor`] — [`monitor::TapMonitor`] demultiplexes an interleaved
//!   tap feed into per-flow analyzers (the deployment front end).
//! * [`expiry`] — [`expiry::ExpiryWheel`], the bucketed idle-expiry queue
//!   behind the monitor's O(due) `finish_idle` and LRU eviction.
//! * [`shard`] — [`shard::ShardedTapMonitor`], the parallel front end:
//!   flows hashed across worker shards, each running its own monitor.
//! * [`bundle`] — serializable trained-model bundles.
//!
//! Training helpers live in `cgc-deploy` (they need the traffic
//! generator); this crate is inference-only and depends only on the
//! feature extractors and `mlcore`.

#![warn(missing_docs)]

pub mod bundle;
pub mod expiry;
pub mod filter;
pub mod metrics;
pub mod monitor;
pub mod pattern;
pub mod pipeline;
pub mod qoe;
pub mod shard;
pub mod stage;
pub mod title;

pub use bundle::{ModelBundle, ModelSource};
pub use expiry::ExpiryWheel;
pub use filter::{CloudGamingFilter, FilterConfig, Platform};
pub use metrics::{MonitorMetrics, PipelineMetrics};
pub use monitor::{MonitorConfig, MonitoredSession, ShardStats, TapMonitor};
pub use pattern::{PatternInferrer, PatternInferrerConfig, PatternPrediction, PatternTracker};
pub use pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer, SessionReport};
pub use qoe::{
    effective_qoe, objective_qoe, CalibrationTable, GameContext, ObjectiveThresholds, QosMetrics,
};
pub use shard::{MonitorStats, ShardedMonitorConfig, ShardedTapMonitor, SharedModels, TapRecord};
pub use stage::{StageClassifier, StageClassifierConfig, STAGE_CLASSES};
pub use title::{TitleClassifier, TitleClassifierConfig, TitlePrediction};
