//! Gameplay activity pattern inference (§4.3.2).
//!
//! A Random Forest over the nine normalized stage-transition probabilities
//! accumulated from the continuously classified player activity stages.
//! The tracker emits a pattern once the model's confidence exceeds the
//! threshold (the paper deploys 75 %, reaching a decision in ~5 minutes on
//! average) and a minimum amount of evidence has accumulated.

use cgc_domain::{ActivityPattern, Stage};
use cgc_features::transitions::TransitionAccumulator;
use mlcore::forest::{RandomForest, RandomForestConfig};
use mlcore::{argmax, Classifier, Dataset, FlatForest};
use serde::{Deserialize, Serialize, Value};

/// Pattern inference configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternInferrerConfig {
    /// Forest hyperparameters (paper Fig. 15: 100 trees, depth 10 deployed).
    pub forest: RandomForestConfig,
    /// Confidence threshold above which a prediction is emitted.
    pub confidence_threshold: f64,
    /// Minimum recorded transitions before predictions are attempted.
    pub min_transitions: u64,
    /// The confident winner must persist for this many consecutive slots
    /// before the decision fires (debounces overconfident early windows).
    pub stable_slots: u64,
}

impl Default for PatternInferrerConfig {
    fn default() -> Self {
        PatternInferrerConfig {
            forest: RandomForestConfig {
                n_trees: 100,
                max_depth: 10,
                ..Default::default()
            },
            confidence_threshold: 0.75,
            min_transitions: 60,
            stable_slots: 60,
        }
    }
}

/// A confident pattern decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternPrediction {
    /// The inferred gameplay activity pattern.
    pub pattern: ActivityPattern,
    /// Model confidence at decision time.
    pub confidence: f64,
    /// Number of slots observed when the decision fired.
    pub decided_after_slots: u64,
}

/// A trained gameplay-activity-pattern inferrer.
///
/// Inference runs per slot on the tap hot path, so it uses the
/// [`FlatForest`] compiled from the trained forest (rebuilt on
/// deserialization — wire format unchanged).
#[derive(Debug, Clone)]
pub struct PatternInferrer {
    forest: RandomForest,
    flat: FlatForest,
    config: PatternInferrerConfig,
}

impl Serialize for PatternInferrer {
    fn to_value(&self) -> Value {
        // Mirror the old derived `{ forest, config }` layout.
        Value::Object(vec![
            ("forest".to_string(), self.forest.to_value()),
            ("config".to_string(), self.config.to_value()),
        ])
    }
}

impl Deserialize for PatternInferrer {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let forest = RandomForest::from_value(v.field("forest")?)?;
        let config = PatternInferrerConfig::from_value(v.field("config")?)?;
        Ok(PatternInferrer::from_parts(forest, config))
    }
}

impl PatternInferrer {
    /// Trains on a dataset of 9-feature transition vectors labeled with
    /// [`ActivityPattern::index`] class ids.
    ///
    /// # Panics
    /// Panics unless the dataset has exactly 9 features and 2 classes.
    pub fn train(data: &Dataset, config: PatternInferrerConfig) -> PatternInferrer {
        assert_eq!(
            data.n_features(),
            9,
            "transition features are 9-dimensional"
        );
        assert_eq!(data.n_classes, 2, "two activity patterns");
        Self::from_parts(RandomForest::fit(data, &config.forest), config)
    }

    fn from_parts(forest: RandomForest, config: PatternInferrerConfig) -> PatternInferrer {
        let flat = forest.to_flat();
        PatternInferrer {
            forest,
            flat,
            config,
        }
    }

    /// Raw inference on a transition-feature vector: `(pattern, confidence)`.
    /// Runs on the flat forest with a stack score buffer — no allocation.
    pub fn infer(&self, features: &[f64; 9]) -> (ActivityPattern, f64) {
        let mut p = [0.0f64; 2];
        let nc = self.flat.n_classes();
        self.flat.predict_proba_into(features, &mut p[..nc]);
        let i = argmax(&p[..nc]);
        let conf = p.get(i).copied().unwrap_or(0.0);
        (ActivityPattern::from_index(i).expect("two classes"), conf)
    }

    /// The configuration (threshold, evidence floor).
    pub fn config(&self) -> &PatternInferrerConfig {
        &self.config
    }

    /// Returns the same trained model under a different gating
    /// configuration (threshold sweeps reuse one forest).
    pub fn with_config(&self, config: PatternInferrerConfig) -> PatternInferrer {
        PatternInferrer {
            forest: self.forest.clone(),
            flat: self.flat.clone(),
            config,
        }
    }

    /// Access to the underlying forest (for importance analyses).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Content digest of the compiled inference forest (model-registry
    /// artifact verification).
    pub fn flat_checksum(&self) -> u64 {
        self.flat.checksum()
    }
}

/// Per-session streaming state: accumulates classified stages and fires a
/// [`PatternPrediction`] when the inferrer is confident.
#[derive(Debug, Clone)]
pub struct PatternTracker {
    acc: TransitionAccumulator,
    slots_seen: u64,
    decision: Option<PatternPrediction>,
    streak: Option<(ActivityPattern, u64)>,
}

impl Default for PatternTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl PatternTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        PatternTracker {
            acc: TransitionAccumulator::new(),
            slots_seen: 0,
            decision: None,
            streak: None,
        }
    }

    /// Feeds the stage classified for the next slot. A decision fires once
    /// the same pattern has stayed the confident winner for
    /// `stable_slots` consecutive slots; once fired it is retained (the
    /// paper stops refining after emitting a confident result).
    pub fn push(&mut self, stage: Stage, inferrer: &PatternInferrer) -> Option<PatternPrediction> {
        self.slots_seen += 1;
        self.acc.push(stage);
        if self.decision.is_none() && self.acc.total() >= inferrer.config.min_transitions {
            let (pattern, confidence) = inferrer.infer(&self.acc.features());
            if confidence >= inferrer.config.confidence_threshold {
                let streak = match self.streak {
                    Some((p, k)) if p == pattern => k + 1,
                    _ => 1,
                };
                self.streak = Some((pattern, streak));
                if streak >= inferrer.config.stable_slots.max(1) {
                    self.decision = Some(PatternPrediction {
                        pattern,
                        confidence,
                        decided_after_slots: self.slots_seen,
                    });
                }
            } else {
                self.streak = None;
            }
        }
        self.decision
    }

    /// The decision, if one has fired.
    pub fn decision(&self) -> Option<PatternPrediction> {
        self.decision
    }

    /// Best-effort inference regardless of confidence (for end-of-session
    /// reporting when no confident decision fired).
    pub fn force_infer(&self, inferrer: &PatternInferrer) -> Option<(ActivityPattern, f64)> {
        (self.acc.total() > 0).then(|| inferrer.infer(&self.acc.features()))
    }

    /// The accumulated transition features so far.
    pub fn features(&self) -> [f64; 9] {
        self.acc.features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic per-slot stage sequences with pattern-typical dynamics.
    fn synth_sequence(pattern: ActivityPattern, slots: usize, rng: &mut StdRng) -> Vec<Stage> {
        let mut out = Vec::with_capacity(slots);
        let mut stage = Stage::Idle;
        let mut dwell = 0u32;
        for _ in 0..slots {
            if dwell == 0 {
                stage = match (pattern, stage) {
                    (ActivityPattern::SpectateAndPlay, Stage::Idle) => Stage::Active,
                    (ActivityPattern::SpectateAndPlay, Stage::Active) => {
                        if rng.gen_bool(0.6) {
                            Stage::Passive
                        } else {
                            Stage::Idle
                        }
                    }
                    (ActivityPattern::SpectateAndPlay, Stage::Passive) => {
                        if rng.gen_bool(0.5) {
                            Stage::Active
                        } else {
                            Stage::Idle
                        }
                    }
                    (ActivityPattern::ContinuousPlay, Stage::Active) => Stage::Idle,
                    (ActivityPattern::ContinuousPlay, _) => Stage::Active,
                    (_, Stage::Launch) => Stage::Idle,
                };
                dwell = match (pattern, stage) {
                    (ActivityPattern::ContinuousPlay, Stage::Active) => rng.gen_range(60..200),
                    (_, Stage::Active) => rng.gen_range(30..90),
                    (_, Stage::Passive) => rng.gen_range(10..40),
                    _ => rng.gen_range(15..50),
                };
            }
            dwell -= 1;
            out.push(stage);
        }
        out
    }

    fn synth_dataset(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for pattern in ActivityPattern::ALL {
            for _ in 0..n_per_class {
                let seq = synth_sequence(pattern, 600, &mut rng);
                let acc = TransitionAccumulator::from_sequence(&seq);
                x.push(acc.features().to_vec());
                y.push(pattern.index());
            }
        }
        Dataset::new(x, y)
    }

    #[test]
    fn learns_the_two_patterns() {
        let train = synth_dataset(40, 1);
        let inf = PatternInferrer::train(&train, PatternInferrerConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        for pattern in ActivityPattern::ALL {
            let mut correct = 0;
            for _ in 0..20 {
                let seq = synth_sequence(pattern, 600, &mut rng);
                let acc = TransitionAccumulator::from_sequence(&seq);
                let (p, _) = inf.infer(&acc.features());
                if p == pattern {
                    correct += 1;
                }
            }
            assert!(correct >= 18, "{pattern}: {correct}/20");
        }
    }

    #[test]
    fn tracker_waits_for_evidence() {
        let train = synth_dataset(30, 3);
        let inf = PatternInferrer::train(
            &train,
            PatternInferrerConfig {
                min_transitions: 50,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(4);
        let seq = synth_sequence(ActivityPattern::ContinuousPlay, 400, &mut rng);
        let mut tracker = PatternTracker::new();
        let mut decided_at = None;
        for s in &seq {
            if let Some(d) = tracker.push(*s, &inf) {
                decided_at.get_or_insert(d.decided_after_slots);
            }
        }
        let d = tracker.decision().expect("decision fires");
        assert!(d.decided_after_slots > 50);
        assert!(d.confidence >= 0.75);
        assert_eq!(d.pattern, ActivityPattern::ContinuousPlay);
        // Decision is sticky.
        assert_eq!(decided_at, Some(d.decided_after_slots));
    }

    #[test]
    fn higher_threshold_decides_later_or_never() {
        let train = synth_dataset(30, 5);
        let loose = PatternInferrer::train(
            &train,
            PatternInferrerConfig {
                confidence_threshold: 0.55,
                ..Default::default()
            },
        );
        let strict = PatternInferrer::train(
            &train,
            PatternInferrerConfig {
                confidence_threshold: 0.98,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(6);
        let seq = synth_sequence(ActivityPattern::SpectateAndPlay, 500, &mut rng);
        let mut t_loose = PatternTracker::new();
        let mut t_strict = PatternTracker::new();
        for s in &seq {
            t_loose.push(*s, &loose);
            t_strict.push(*s, &strict);
        }
        let dl = t_loose.decision().expect("loose decides");
        match t_strict.decision() {
            None => {}
            Some(ds) => assert!(ds.decided_after_slots >= dl.decided_after_slots),
        }
    }

    #[test]
    fn force_infer_works_without_confidence() {
        let train = synth_dataset(20, 7);
        let inf = PatternInferrer::train(&train, PatternInferrerConfig::default());
        let mut tracker = PatternTracker::new();
        assert!(tracker.force_infer(&inf).is_none());
        tracker.push(Stage::Idle, &inf);
        tracker.push(Stage::Idle, &inf);
        let (p, c) = tracker.force_infer(&inf).expect("has transitions");
        assert!(c > 0.0);
        let _ = p;
    }

    #[test]
    #[should_panic(expected = "9-dimensional")]
    fn wrong_width_panics() {
        let d = Dataset::new(vec![vec![0.0; 4], vec![0.0; 4]], vec![0, 1]);
        let _ = PatternInferrer::train(&d, PatternInferrerConfig::default());
    }
}
