//! Cloud gaming packet filter (§4.1).
//!
//! The first stage of the pipeline selects the packets that belong to
//! cloud game *streaming* flows, discarding platform administration and
//! unrelated traffic. Following the adapted prior-work signatures the
//! paper cites ([23, 32, 52]), a flow is accepted when it:
//!
//! 1. runs over UDP,
//! 2. matches a platform's server port signature,
//! 3. carries valid RTP (version 2, dynamic payload type) downstream,
//! 4. sustains a downstream packet rate and large mean payload consistent
//!    with video streaming, and
//! 5. is bidirectional (upstream input packets present).
//!
//! Conditions 1–3 are cheap per-packet checks; 4–5 are confirmed over a
//! short observation window before the flow is handed to the classifiers.

use nettrace::flow::FlowStats;
use nettrace::packet::{FiveTuple, Packet, Protocol};
use nettrace::rtp::RtpHeader;
use serde::{Deserialize, Serialize};

pub use cgc_domain::Platform;

/// Volumetric confirmation thresholds for a candidate streaming flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Minimum sustained downstream packet rate (pps). Launch animations
    /// stream at hundreds of pps; platform chatter stays far below.
    pub min_down_pps: f64,
    /// Minimum mean downstream payload (bytes) — video runs near the MTU.
    pub min_mean_down_payload: f64,
    /// Require at least this many upstream packets (input channel).
    pub min_up_pkts: u64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            min_down_pps: 50.0,
            min_mean_down_payload: 300.0,
            min_up_pkts: 3,
        }
    }
}

/// The cloud gaming packet filter.
#[derive(Debug, Clone, Default)]
pub struct CloudGamingFilter {
    config: FilterConfig,
}

impl CloudGamingFilter {
    /// A filter with the given thresholds.
    pub fn new(config: FilterConfig) -> Self {
        CloudGamingFilter { config }
    }

    /// Cheap per-packet pre-check: UDP + known platform port.
    pub fn pre_check(&self, tuple: &FiveTuple) -> Option<Platform> {
        if tuple.proto != Protocol::Udp {
            return None;
        }
        Platform::from_port(tuple.src_port).or_else(|| Platform::from_port(tuple.dst_port))
    }

    /// RTP validity check on a downstream UDP payload.
    pub fn rtp_check(payload: &[u8]) -> bool {
        match RtpHeader::decode(payload) {
            Ok((h, _)) => (96..=127).contains(&h.payload_type),
            Err(_) => false,
        }
    }

    /// Volumetric confirmation over an observed window of flow statistics.
    pub fn confirm(&self, stats: &FlowStats) -> bool {
        if stats.down_pkts == 0 || stats.duration() == 0 {
            return false;
        }
        let mean_payload = stats.down_bytes as f64 / stats.down_pkts as f64
            - f64::from(nettrace::packet::WIRE_OVERHEAD);
        stats.down_pps() >= self.config.min_down_pps
            && mean_payload >= self.config.min_mean_down_payload
            && stats.up_pkts >= self.config.min_up_pkts
    }

    /// Full decision for a candidate flow: platform signature + volumetric
    /// confirmation. Returns the detected platform when accepted.
    pub fn accept(&self, tuple: &FiveTuple, stats: &FlowStats) -> Option<Platform> {
        let platform = self.pre_check(tuple)?;
        self.confirm(stats).then_some(platform)
    }
}

/// Builds [`FlowStats`] from a packet slice (orientation: packets carry
/// their own direction).
pub fn stats_of(packets: &[Packet]) -> FlowStats {
    let mut s = FlowStats::default();
    for p in packets {
        s.update(p);
    }
    s
}

/// Finds the game streaming flow in a raw capture: the busiest UDP
/// conversation whose server side matches a platform port signature,
/// returned in downstream orientation (server as `src`). Returns the tuple
/// and the detected platform.
pub fn detect_streaming_tuple(
    records: &[nettrace::pcap::PcapRecord],
) -> Option<(FiveTuple, Platform)> {
    use std::collections::HashMap;
    let mut volume: HashMap<FiveTuple, u64> = HashMap::new();
    for r in records {
        *volume.entry(r.tuple.normalized()).or_default() += u64::from(r.payload_len);
    }
    volume
        .into_iter()
        .filter_map(|(t, bytes)| {
            // Orient so the platform-signature port is the server side.
            if let Some(p) = Platform::from_port(t.src_port) {
                Some((t, p, bytes))
            } else {
                Platform::from_port(t.dst_port).map(|p| (t.reversed(), p, bytes))
            }
        })
        .max_by_key(|(_, _, bytes)| *bytes)
        .map(|(t, p, _)| (t, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::packet::Direction;

    fn gfn_tuple() -> FiveTuple {
        FiveTuple::udp_v4([10, 0, 0, 1], 49004, [192, 168, 0, 2], 51000)
    }

    fn streaming_stats() -> FlowStats {
        let mut pkts = Vec::new();
        for i in 0..1000u64 {
            pkts.push(Packet::new(i * 2_000, Direction::Downstream, 1432));
        }
        for i in 0..50u64 {
            pkts.push(Packet::new(i * 40_000, Direction::Upstream, 60));
        }
        stats_of(&pkts)
    }

    #[test]
    fn platform_port_signatures() {
        assert_eq!(Platform::from_port(49003), Some(Platform::GeForceNow));
        assert_eq!(Platform::from_port(49006), Some(Platform::GeForceNow));
        assert_eq!(Platform::from_port(9295), Some(Platform::Ps5Cloud));
        assert_eq!(Platform::from_port(9988), Some(Platform::AmazonLuna));
        assert_eq!(Platform::from_port(3074), Some(Platform::XboxCloud));
        assert_eq!(Platform::from_port(443), None);
    }

    #[test]
    fn accepts_genuine_streaming_flow() {
        let f = CloudGamingFilter::default();
        assert_eq!(
            f.accept(&gfn_tuple(), &streaming_stats()),
            Some(Platform::GeForceNow)
        );
    }

    #[test]
    fn rejects_tcp_and_unknown_ports() {
        let f = CloudGamingFilter::default();
        let mut t = gfn_tuple();
        t.proto = Protocol::Tcp;
        assert_eq!(f.accept(&t, &streaming_stats()), None);
        let web = FiveTuple::udp_v4([10, 0, 0, 1], 443, [192, 168, 0, 2], 51000);
        assert_eq!(f.accept(&web, &streaming_stats()), None);
    }

    #[test]
    fn rejects_low_rate_chatter() {
        let f = CloudGamingFilter::default();
        // 10 small packets over 10 s: platform keep-alive, not streaming.
        let mut pkts: Vec<Packet> = (0..10u64)
            .map(|i| Packet::new(i * 1_000_000, Direction::Downstream, 100))
            .collect();
        pkts.push(Packet::new(0, Direction::Upstream, 60));
        assert_eq!(f.accept(&gfn_tuple(), &stats_of(&pkts)), None);
    }

    #[test]
    fn rejects_unidirectional_flows() {
        let f = CloudGamingFilter::default();
        let pkts: Vec<Packet> = (0..1000u64)
            .map(|i| Packet::new(i * 2_000, Direction::Downstream, 1432))
            .collect();
        assert_eq!(f.accept(&gfn_tuple(), &stats_of(&pkts)), None);
    }

    #[test]
    fn rtp_check_validates_header() {
        let mut buf = Vec::new();
        RtpHeader::video(1, 2, 3, false).encode(&mut buf);
        assert!(CloudGamingFilter::rtp_check(&buf));
        // Non-dynamic payload type is rejected.
        let mut h = RtpHeader::video(1, 2, 3, false);
        h.payload_type = 0;
        let mut buf2 = Vec::new();
        h.encode(&mut buf2);
        assert!(!CloudGamingFilter::rtp_check(&buf2));
        assert!(!CloudGamingFilter::rtp_check(&[0u8; 4]));
    }

    #[test]
    fn empty_stats_are_rejected() {
        let f = CloudGamingFilter::default();
        assert!(!f.confirm(&FlowStats::default()));
    }

    #[test]
    fn detect_streaming_tuple_picks_the_busiest_platform_flow() {
        use nettrace::pcap::PcapRecord;
        let game = gfn_tuple();
        let chatter = FiveTuple::udp_v4([1, 1, 1, 1], 443, [192, 168, 0, 2], 51001);
        let mut records = Vec::new();
        for i in 0..100u64 {
            records.push(PcapRecord {
                ts: i,
                tuple: game,
                rtp: None,
                payload_len: 1432,
            });
            // Upstream direction of the same conversation.
            records.push(PcapRecord {
                ts: i,
                tuple: game.reversed(),
                rtp: None,
                payload_len: 60,
            });
            records.push(PcapRecord {
                ts: i,
                tuple: chatter,
                rtp: None,
                payload_len: 1400,
            });
        }
        let (tuple, platform) = detect_streaming_tuple(&records).expect("flow found");
        assert_eq!(platform, Platform::GeForceNow);
        // Downstream orientation: the platform port is the source.
        assert_eq!(tuple.src_port, 49004);
        assert_eq!(tuple.normalized(), game.normalized());
    }

    #[test]
    fn detect_streaming_tuple_none_without_platform_ports() {
        use nettrace::pcap::PcapRecord;
        let records = vec![PcapRecord {
            ts: 0,
            tuple: FiveTuple::udp_v4([1, 1, 1, 1], 443, [2, 2, 2, 2], 444),
            rtp: None,
            payload_len: 100,
        }];
        assert!(detect_streaming_tuple(&records).is_none());
    }

    #[test]
    fn reverse_orientation_also_matches() {
        let f = CloudGamingFilter::default();
        assert_eq!(
            f.pre_check(&gfn_tuple().reversed()),
            Some(Platform::GeForceNow)
        );
    }
}
