//! The real-time session analyzer (Fig. 6).
//!
//! [`SessionAnalyzer`] wires the pipeline together for one streaming
//! session:
//!
//! 1. the **title process** classifies the game from the first `N` seconds
//!    of downstream packets;
//! 2. the **stage process** seeds its peak trackers during the first slots
//!    (game launch), then classifies every `I`-second slot from the
//!    EMA-smoothed relative volumetrics and feeds the stage sequence to the
//!    pattern tracker, which emits a confident activity-pattern inference;
//! 3. per slot, objective and effective QoE labels are produced by
//!    combining measured QoS with the classified context.
//!
//! Both ingestion paths converge on the same slot loop: full packet traces
//! (`analyze_packets`) and launch-packets-plus-volumetrics
//! (`analyze`) — the latter is what deployment-scale runs use.

use cgc_domain::{ActivityPattern, QoeLevel, Stage};
use cgc_obs::drift::DriftSink;
use cgc_obs::event::EventKind;
use cgc_obs::journal::EventSink;
use cgc_obs::quality::ModelKind;
use cgc_obs::trace::{trace_id, TraceSink, TraceStage};
use nettrace::packet::Packet;
use nettrace::units::{secs_to_micros, Micros};
use nettrace::vol::{VolSample, VolSeries};
use serde::{Deserialize, Serialize};

use cgc_features::vol_attrs::{raw_features, StageFeatureExtractor};

use crate::bundle::ModelBundle;
use crate::metrics::PipelineMetrics;
use crate::pattern::{PatternPrediction, PatternTracker};
use crate::qoe::{effective_qoe, majority_level, objective_qoe, GameContext, QosMetrics};
use crate::title::TitlePrediction;

/// Analyzer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// Title classification window in seconds (`N = 5` deployed).
    pub title_window_secs: f64,
    /// Slots used to seed the volumetric peak trackers before stage
    /// classification starts (they fall inside the launch animation, which
    /// is never shorter than ~30 s).
    pub seed_slots: usize,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            title_window_secs: 5.0,
            seed_slots: 10,
        }
    }
}

/// Externally measured QoS context for QoE labeling: the gray-box module
/// of Fig. 6 (prior-work estimators, or ground truth in simulation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeInputs {
    /// Nominal (negotiated) streaming frame rate, fps.
    pub nominal_fps: f64,
    /// Measured network latency, ms.
    pub latency_ms: f64,
    /// Measured packet loss rate.
    pub loss_rate: f64,
    /// The session's settings bitrate factor relative to the SD/30 floor
    /// (from prior-work device/resolution detection); 1.0 when unknown.
    pub settings_factor: f64,
    /// Fraction of the negotiated frame rate actually delivered (1.0 on a
    /// healthy path; loss and congestion push it down).
    pub delivered_fps_ratio: f64,
}

impl Default for QoeInputs {
    fn default() -> Self {
        QoeInputs {
            nominal_fps: 60.0,
            latency_ms: 10.0,
            loss_rate: 0.0,
            settings_factor: 1.0,
            delivered_fps_ratio: 1.0,
        }
    }
}

/// Everything the pipeline produced for one session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionReport {
    /// Title classification result.
    pub title: TitlePrediction,
    /// Confident pattern decision, if one fired during the session.
    pub pattern: Option<PatternPrediction>,
    /// Best-effort pattern at session end (even if never confident).
    pub final_pattern: Option<(ActivityPattern, f64)>,
    /// Per-slot classified stages (slot 0 = session start; the seed window
    /// reads as launch).
    pub stage_slots: Vec<Stage>,
    /// Per-slot (objective, effective) QoE labels, aligned with
    /// `stage_slots`.
    pub qoe_slots: Vec<(QoeLevel, QoeLevel)>,
    /// Slot width, microseconds.
    pub slot_width: Micros,
    /// Session-level mean downstream throughput, Mbps.
    pub mean_down_mbps: f64,
    /// Majority objective QoE over gameplay slots.
    pub objective_qoe: QoeLevel,
    /// Majority effective QoE over gameplay slots.
    pub effective_qoe: QoeLevel,
}

impl SessionReport {
    /// Seconds of gameplay the pipeline attributed to `stage`.
    pub fn stage_seconds(&self, stage: Stage) -> f64 {
        let slots = self.stage_slots.iter().filter(|s| **s == stage).count();
        slots as f64 * self.slot_width as f64 / 1e6
    }
}

/// The per-slot latency histograms (`cgc_pipeline_feature_ns`,
/// `cgc_pipeline_stage_infer_ns`) time one of every this many classified
/// slots.
pub const LATENCY_SAMPLE: u64 = 8;

/// Per-session pipeline state.
pub struct SessionAnalyzer<'b> {
    bundle: &'b ModelBundle,
    config: AnalyzerConfig,
    title: Option<TitlePrediction>,
    extractor: Option<StageFeatureExtractor>,
    seed_buf: Vec<VolSample>,
    tracker: PatternTracker,
    stage_slots: Vec<Stage>,
    qoe_slots: Vec<(QoeLevel, QoeLevel)>,
    qoe: QoeInputs,
    metrics: PipelineMetrics,
    /// Flight-recorder sink (disabled unless attached); decision points
    /// emit events keyed by `flow` at tap-clock `ts_base` + flow offset.
    journal: EventSink,
    /// Span recorder for the Slot/Classifier/Verdict stages.
    trace: TraceSink,
    /// Label-free drift sink: every inference's (confidence, margin)
    /// score pair, for reference-vs-current distribution comparison.
    /// Disabled unless attached — one branch and zero allocation per
    /// slot when no drift engine is installed.
    drift: DriftSink,
    /// Head-based sampling verdict for this flow, resolved once at
    /// [`SessionAnalyzer::attach_trace`]; sampled-out flows skip even the
    /// per-slot modulo.
    trace_sampled: bool,
    flow: u64,
    ts_base: u64,
    pattern_recorded: bool,
    /// Classified slots seen so far, for 1-in-[`LATENCY_SAMPLE`] latency
    /// span sampling.
    latency_tick: u64,
    total_down_bytes: u64,
    slots_seen: usize,
    // Streaming (per-packet) ingestion state.
    stream_title_buf: Vec<Packet>,
    stream_slot_index: u64,
    stream_sample: VolSample,
    stream_any: bool,
}

impl<'b> SessionAnalyzer<'b> {
    /// A fresh analyzer against a trained bundle, recording telemetry
    /// into the process-wide registry.
    pub fn new(bundle: &'b ModelBundle, config: AnalyzerConfig, qoe: QoeInputs) -> Self {
        Self::with_metrics(bundle, config, qoe, PipelineMetrics::global().clone())
    }

    /// A fresh analyzer recording telemetry into injected handles (used
    /// by tests and tools that need an isolated registry).
    pub fn with_metrics(
        bundle: &'b ModelBundle,
        config: AnalyzerConfig,
        qoe: QoeInputs,
        metrics: PipelineMetrics,
    ) -> Self {
        SessionAnalyzer {
            bundle,
            config,
            title: None,
            extractor: None,
            seed_buf: Vec::new(),
            tracker: PatternTracker::new(),
            stage_slots: Vec::new(),
            qoe_slots: Vec::new(),
            qoe,
            metrics,
            journal: EventSink::disabled(),
            trace: TraceSink::disabled(),
            drift: DriftSink::disabled(),
            trace_sampled: false,
            flow: 0,
            ts_base: 0,
            pattern_recorded: false,
            latency_tick: 0,
            total_down_bytes: 0,
            slots_seen: 0,
            stream_title_buf: Vec::new(),
            stream_slot_index: 0,
            stream_sample: VolSample::default(),
            stream_any: false,
        }
    }

    /// Attaches a flight-recorder sink: subsequent decisions emit
    /// [`EventKind`] events under `flow`, timestamped `ts_base` (tap
    /// clock, µs) plus the flow-relative offset of each decision.
    pub fn attach_journal(&mut self, sink: EventSink, flow: u64, ts_base: u64) {
        self.journal = sink;
        self.flow = flow;
        self.ts_base = ts_base;
    }

    /// Attaches a span recorder: slot closures, the title inference, and
    /// the session verdict record [`TraceStage`] spans under the flow id
    /// set by [`attach_journal`](Self::attach_journal) (call that first).
    /// The sampling decision is made here, once per flow, so sampled-out
    /// flows pay nothing per slot.
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.trace_sampled = sink.is_enabled() && sink.sampled(self.flow);
        self.trace = sink;
    }

    /// Attaches a drift sink: the title inference, every classified
    /// slot's stage inference, and the pattern decision each emit one
    /// (confidence, margin) score observation to the drift engine.
    pub fn attach_drift(&mut self, sink: DriftSink) {
        self.drift = sink;
    }

    /// Tap-clock timestamp of the most recently closed slot boundary.
    fn slot_ts(&self) -> u64 {
        self.ts_base + self.slots_seen as u64 * self.bundle.stage_slot
    }

    /// Runs the title process on the session's first packets (timestamps
    /// relative to flow start). Called once; later calls overwrite.
    pub fn ingest_title_window(&mut self, packets: &[Packet]) -> TitlePrediction {
        let window = secs_to_micros(self.config.title_window_secs);
        let in_window: Vec<Packet> = packets.iter().copied().filter(|p| p.ts < window).collect();
        self.classify_title(&in_window)
    }

    /// Runs (and times) the title RF, recording the decision.
    fn classify_title(&mut self, packets: &[Packet]) -> TitlePrediction {
        let t0 = self.trace_sampled.then(std::time::Instant::now);
        let span = self.metrics.title_infer_ns.span();
        let (pred, margin) = self.bundle.title.classify_scored(packets);
        span.finish();
        self.drift
            .observe(ModelKind::Title, pred.confidence, margin);
        if let Some(t0) = t0 {
            let ts = self.ts_base + secs_to_micros(self.config.title_window_secs);
            self.trace.record(
                self.flow,
                0,
                TraceStage::Classifier,
                ts,
                t0.elapsed().as_micros() as u64,
            );
        }
        self.metrics.record_title(pred.title, pred.confidence);
        self.title = Some(pred);
        if self.journal.is_enabled() {
            let ts = self.ts_base + secs_to_micros(self.config.title_window_secs);
            self.journal.emit(
                self.flow,
                ts,
                EventKind::LaunchWindowClosed {
                    packets: packets.len() as u32,
                },
            );
            self.journal.emit(
                self.flow,
                ts,
                EventKind::TitleDecided {
                    title: pred.title,
                    confidence: pred.confidence,
                },
            );
        }
        pred
    }

    /// Feeds one `I`-second volumetric slot (width must equal the bundle's
    /// `stage_slot`). Returns the classified stage once seeding completes.
    pub fn push_slot(&mut self, sample: &VolSample) -> Option<Stage> {
        self.metrics.slots.inc();
        self.slots_seen += 1;
        self.total_down_bytes += sample.down_bytes;
        let width = self.bundle.stage_slot;

        if self.extractor.is_none() {
            self.seed_buf.push(*sample);
            if self.seed_buf.len() >= self.config.seed_slots {
                self.extractor = Some(StageFeatureExtractor::new(
                    &self.bundle.stage_feature,
                    width,
                    &self.seed_buf,
                ));
            }
            // The seed window is the start of the launch animation.
            self.record_slot(Stage::Launch, sample);
            return None;
        }

        // Latency spans are sampled 1-in-N: the clock reads would otherwise
        // dominate the per-slot cost on the tap hot path. Decision counters
        // stay exact; only the timing histograms are sampled.
        let sampled = self.latency_tick.is_multiple_of(LATENCY_SAMPLE);
        self.latency_tick += 1;
        let t0 = sampled.then(std::time::Instant::now);
        let feats = self
            .extractor
            .as_mut()
            .expect("extractor initialized")
            .push(sample);
        let t1 = sampled.then(std::time::Instant::now);
        let stage = if self.drift.is_enabled() {
            // One probability pass yields both the argmax stage and the
            // drift signal; same flat-forest walk, same stack buffer, so
            // enabling drift adds no allocation to the slot loop.
            let p = self.bundle.stage.probabilities(&feats);
            let (mut best, mut runner_up) = (0usize, 0.0f64);
            for (i, &v) in p.iter().enumerate() {
                if v > p[best] {
                    runner_up = p[best];
                    best = i;
                } else if v > runner_up && i != best {
                    runner_up = v;
                }
            }
            self.drift
                .observe(ModelKind::Stage, p[best], (p[best] - runner_up).max(0.0));
            crate::stage::STAGE_CLASSES[best]
        } else {
            self.bundle.stage.classify(&feats)
        };
        let slot = (self.slots_seen - 1) as u32;
        if let (Some(t0), Some(t1)) = (t0, t1) {
            let t2 = std::time::Instant::now();
            let feature = (t1 - t0).as_nanos() as u64;
            let infer = (t2 - t1).as_nanos() as u64;
            if self.trace_sampled {
                // Exemplars link these latency buckets to `/trace?flow=`:
                // a scraper jumps from a slow bucket straight to the
                // causal chain of the flow that landed in it.
                let tid = trace_id(self.flow, slot);
                self.metrics
                    .feature_ns
                    .record_with_exemplar(feature, self.flow, tid);
                self.metrics
                    .stage_infer_ns
                    .record_with_exemplar(infer, self.flow, tid);
            } else {
                self.metrics.feature_ns.record(feature);
                self.metrics.stage_infer_ns.record(infer);
            }
        }
        self.tracker.push(stage, &self.bundle.pattern);
        if !self.pattern_recorded {
            if let Some(d) = self.tracker.decision() {
                self.metrics.record_pattern(d.pattern, d.confidence);
                self.pattern_recorded = true;
                // Two-class model: margin is top minus runner-up, i.e.
                // 2·confidence − 1 for any confidence ≥ 0.5.
                self.drift.observe(
                    ModelKind::Pattern,
                    d.confidence,
                    (2.0 * d.confidence - 1.0).max(0.0),
                );
                self.journal.emit(
                    self.flow,
                    self.slot_ts(),
                    EventKind::PatternInferred {
                        pattern: d.pattern,
                        confidence: d.confidence,
                    },
                );
            }
        }
        self.record_slot(stage, sample);
        if self.trace_sampled {
            self.trace
                .record(self.flow, slot, TraceStage::Slot, self.slot_ts(), 0);
        }
        Some(stage)
    }

    fn record_slot(&mut self, stage: Stage, sample: &VolSample) {
        let width_secs = self.bundle.stage_slot as f64 / 1e6;
        let raw = raw_features(sample, width_secs);
        // Frame-rate proxy per slot: the encoder delivers the stage's
        // nominal fraction of the configured frame rate (prior-work
        // traffic-based fps estimation reduced to its stage dependency).
        let rel_pps = crate::qoe::stage_fps_factor(stage);
        let metrics = QosMetrics {
            throughput_mbps: raw[0],
            frame_rate: self.qoe.nominal_fps * self.qoe.delivered_fps_ratio * rel_pps,
            latency_ms: self.qoe.latency_ms,
            loss_rate: self.qoe.loss_rate,
        };
        let ctx = GameContext {
            title: self.title.and_then(|t| t.title),
            pattern: self.tracker.decision().map(|d| d.pattern),
            stage,
            settings_factor: self.qoe.settings_factor,
            nominal_fps: self.qoe.nominal_fps,
        };
        let obj = objective_qoe(&metrics, &self.bundle.thresholds);
        let eff = effective_qoe(
            &metrics,
            &ctx,
            &self.bundle.calibration,
            &self.bundle.thresholds,
        );
        self.metrics.record_stage_slot(stage);
        self.metrics.record_qoe(obj, eff);
        if self.journal.is_enabled() {
            // Transitions only: a steady stage or QoE level emits nothing,
            // keeping journal volume proportional to decisions, not slots.
            let slot = (self.slots_seen - 1) as u32;
            if self.stage_slots.last() != Some(&stage) {
                self.journal.emit(
                    self.flow,
                    self.slot_ts(),
                    EventKind::StageEntered { slot, stage },
                );
            }
            if self.qoe_slots.last() != Some(&(obj, eff)) {
                self.journal.emit(
                    self.flow,
                    self.slot_ts(),
                    EventKind::QoeShift {
                        slot,
                        objective: obj,
                        effective: eff,
                    },
                );
            }
        }
        self.stage_slots.push(stage);
        self.qoe_slots.push((obj, eff));
    }

    /// Updates the QoS context used for QoE labeling of subsequently
    /// closed slots (the gray-box estimators refresh their measurements
    /// mid-session).
    pub fn set_qoe(&mut self, qoe: QoeInputs) {
        self.qoe = qoe;
    }

    /// The title prediction, once the title window has closed (or
    /// [`SessionAnalyzer::ingest_title_window`] ran).
    pub fn title_prediction(&self) -> Option<TitlePrediction> {
        self.title
    }

    /// The most recently classified stage (the latest closed slot's label).
    pub fn current_stage(&self) -> Option<Stage> {
        self.stage_slots.last().copied()
    }

    /// Streaming path: feed packets one at a time as a tap would observe
    /// them (timestamps relative to flow start, non-decreasing). The title
    /// process fires automatically when the first packet past the `N`-second
    /// window arrives; volumetric slots close as their boundaries pass.
    /// Call [`SessionAnalyzer::finish`] at flow end — it flushes the
    /// trailing partial slot and classifies the title even for captures
    /// shorter than the window.
    pub fn push_packet(&mut self, pkt: &Packet) {
        let window = secs_to_micros(self.config.title_window_secs);
        if self.title.is_none() {
            if pkt.ts < window {
                self.stream_title_buf.push(*pkt);
            } else {
                let buf = std::mem::take(&mut self.stream_title_buf);
                self.classify_title(&buf);
            }
        }
        // Close any slots the packet's timestamp has moved past.
        let width = self.bundle.stage_slot;
        while pkt.ts >= (self.stream_slot_index + 1) * width {
            let sample = std::mem::take(&mut self.stream_sample);
            self.push_slot(&sample);
            self.stream_slot_index += 1;
        }
        self.stream_sample.add(pkt);
        self.stream_any = true;
    }

    /// Batch path for deployment-scale sessions: title window from launch
    /// packets, stages/QoE from a volumetric series covering the whole
    /// session (any width that divides the bundle's slot width evenly).
    pub fn analyze(&mut self, launch_packets: &[Packet], vol: &VolSeries) {
        self.ingest_title_window(launch_packets);
        let series = if vol.width == self.bundle.stage_slot {
            vol.clone()
        } else {
            assert!(
                self.bundle.stage_slot.is_multiple_of(vol.width),
                "vol width must divide the stage slot"
            );
            vol.rebin((self.bundle.stage_slot / vol.width) as usize)
        };
        for s in &series.samples {
            self.push_slot(s);
        }
    }

    /// Batch path for full packet traces (lab fidelity).
    pub fn analyze_packets(&mut self, packets: &[Packet]) {
        self.ingest_title_window(packets);
        let vol = VolSeries::from_packets(packets, 0, self.bundle.stage_slot);
        for s in &vol.samples {
            self.push_slot(s);
        }
    }

    /// Finalizes the analysis into a report, flushing streaming state.
    pub fn finish(mut self) -> SessionReport {
        // Flush the streaming path: pending title window and partial slot.
        if self.title.is_none() && !self.stream_title_buf.is_empty() {
            let buf = std::mem::take(&mut self.stream_title_buf);
            self.classify_title(&buf);
        }
        if self.stream_any {
            let sample = std::mem::take(&mut self.stream_sample);
            if sample != VolSample::default() {
                self.push_slot(&sample);
            }
        }
        self.finish_inner()
    }

    fn finish_inner(self) -> SessionReport {
        let duration_secs = self.slots_seen as f64 * self.bundle.stage_slot as f64 / 1e6;
        let mean_down_mbps = if duration_secs > 0.0 {
            self.total_down_bytes as f64 * 8.0 / duration_secs / 1e6
        } else {
            0.0
        };
        // Session QoE: majority over gameplay (non-launch) slots.
        let gameplay: Vec<usize> = self
            .stage_slots
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != Stage::Launch)
            .map(|(i, _)| i)
            .collect();
        let obj: Vec<QoeLevel> = gameplay.iter().map(|&i| self.qoe_slots[i].0).collect();
        let eff: Vec<QoeLevel> = gameplay.iter().map(|&i| self.qoe_slots[i].1).collect();
        let objective_qoe = majority_level(&obj);
        let effective_qoe = majority_level(&eff);
        self.journal.emit(
            self.flow,
            self.slot_ts(),
            EventKind::SessionVerdict {
                objective: objective_qoe,
                effective: effective_qoe,
            },
        );
        if self.trace_sampled {
            self.trace.record(
                self.flow,
                self.slots_seen as u32,
                TraceStage::Verdict,
                self.slot_ts(),
                0,
            );
        }
        SessionReport {
            title: self.title.unwrap_or(TitlePrediction {
                title: None,
                confidence: 0.0,
            }),
            pattern: self.tracker.decision(),
            final_pattern: self.tracker.force_infer(&self.bundle.pattern),
            stage_slots: self.stage_slots,
            qoe_slots: self.qoe_slots,
            slot_width: self.bundle.stage_slot,
            mean_down_mbps,
            objective_qoe,
            effective_qoe,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cgc_domain::{GameTitle, StreamSettings};
    use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};

    /// Shared with the streaming and monitor test modules.
    pub(crate) fn tiny_bundle_for_streaming() -> ModelBundle {
        tiny_bundle()
    }

    /// A tiny bundle trained on a handful of synthetic sessions; enough for
    /// exercising the analyzer mechanics (accuracy is tested elsewhere).
    fn tiny_bundle() -> ModelBundle {
        use crate::pattern::{PatternInferrer, PatternInferrerConfig};
        use crate::stage::{stage_class_id, StageClassifier, StageClassifierConfig};
        use crate::title::{TitleClassifier, TitleClassifierConfig};
        use cgc_features::launch_attrs::launch_attributes;
        use cgc_features::transitions::TransitionAccumulator;
        use cgc_features::vol_attrs::StageFeatureExtractor;
        use mlcore::forest::RandomForestConfig;
        use mlcore::Dataset;

        let mut generator = SessionGenerator::new();
        let attr = cgc_features::launch_attrs::LaunchAttrConfig::default();
        let mut tx = Vec::new();
        let mut ty = Vec::new();
        let mut sx = Vec::new();
        let mut sy = Vec::new();
        let mut px = Vec::new();
        let mut py = Vec::new();
        for (k, title) in [
            GameTitle::Fortnite,
            GameTitle::GenshinImpact,
            GameTitle::Hearthstone,
        ]
        .iter()
        .enumerate()
        {
            for i in 0..4u64 {
                let s = generator.generate(&SessionConfig {
                    kind: TitleKind::Known(*title),
                    settings: StreamSettings::default_pc(),
                    gameplay_secs: 240.0,
                    fidelity: Fidelity::LaunchOnly,
                    seed: 900 + k as u64 * 10 + i,
                });
                tx.push(launch_attributes(&s.launch_window(5.0), &attr));
                ty.push(title.index());
                // Stage rows through the pipeline's own extractor.
                let vol = s.vol_at(ModelBundle::DEFAULT_STAGE_SLOT);
                let mut ex = StageFeatureExtractor::new(
                    &Default::default(),
                    ModelBundle::DEFAULT_STAGE_SLOT,
                    &vol.samples[..10],
                );
                let mut stages = Vec::new();
                for (j, sample) in vol.samples.iter().enumerate().skip(10) {
                    let feats = ex.push(sample);
                    let mid = j as u64 * ModelBundle::DEFAULT_STAGE_SLOT
                        + ModelBundle::DEFAULT_STAGE_SLOT / 2;
                    if let Some(st) = s.timeline.stage_at(mid) {
                        sx.push(feats.to_vec());
                        sy.push(stage_class_id(st));
                        stages.push(st);
                    }
                }
                let acc = TransitionAccumulator::from_sequence(&stages);
                if acc.total() > 0 {
                    px.push(acc.features().to_vec());
                    py.push(title.pattern().index());
                }
            }
        }
        let small = RandomForestConfig {
            n_trees: 15,
            ..Default::default()
        };
        ModelBundle {
            title: TitleClassifier::train(
                &Dataset::new(tx, ty).with_n_classes(GameTitle::ALL.len()),
                TitleClassifierConfig {
                    forest: small,
                    ..Default::default()
                },
            ),
            stage: StageClassifier::train(
                &Dataset::new(sx, sy).with_n_classes(4),
                StageClassifierConfig { forest: small },
            ),
            pattern: PatternInferrer::train(
                &Dataset::new(px, py).with_n_classes(2),
                PatternInferrerConfig {
                    forest: small,
                    ..Default::default()
                },
            ),
            stage_feature: Default::default(),
            stage_slot: ModelBundle::DEFAULT_STAGE_SLOT,
            thresholds: crate::qoe::ObjectiveThresholds::default(),
            calibration: crate::qoe::CalibrationTable::default(),
        }
    }

    fn session(seed: u64) -> gamesim::Session {
        let mut generator = SessionGenerator::new();
        generator.generate(&SessionConfig {
            kind: TitleKind::Known(GameTitle::Fortnite),
            settings: StreamSettings::default_pc(),
            gameplay_secs: 120.0,
            fidelity: Fidelity::LaunchOnly,
            seed,
        })
    }

    #[test]
    fn seed_window_reads_as_launch_and_returns_none() {
        let bundle = tiny_bundle();
        let mut a = SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
        let s = session(1);
        let vol = s.vol_at(bundle.stage_slot);
        for (i, sample) in vol.samples.iter().take(10).enumerate() {
            assert_eq!(a.push_slot(sample), None, "slot {i} inside seed window");
        }
        // After seeding, stages come back.
        assert!(a.push_slot(&vol.samples[10]).is_some());
    }

    #[test]
    fn report_accounts_every_slot() {
        let bundle = tiny_bundle();
        let s = session(2);
        let mut a = SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
        a.analyze(&s.packets, &s.vol);
        let r = a.finish();
        let expected = s.vol.rebin(10).len();
        assert_eq!(r.stage_slots.len(), expected);
        assert_eq!(r.qoe_slots.len(), expected);
        // stage_seconds sums back to the session length.
        let total: f64 = [Stage::Launch, Stage::Idle, Stage::Passive, Stage::Active]
            .iter()
            .map(|st| r.stage_seconds(*st))
            .sum();
        assert!((total - expected as f64).abs() < 1e-9);
    }

    #[test]
    fn empty_analyzer_produces_empty_report() {
        let bundle = tiny_bundle();
        let a = SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
        let r = a.finish();
        assert!(r.stage_slots.is_empty());
        assert_eq!(r.mean_down_mbps, 0.0);
        assert!(r.title.title.is_none());
        assert_eq!(r.objective_qoe, cgc_domain::QoeLevel::Good); // vacuous majority
    }

    #[test]
    fn analyze_rebins_finer_series() {
        let bundle = tiny_bundle();
        let s = session(3);
        // Native 100 ms series is rebinned internally to the 1 s slot.
        let mut a = SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
        a.analyze(&s.packets, &s.vol);
        let r1 = a.finish();
        // Pre-rebinned input gives the identical report.
        let mut b = SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
        b.analyze(&s.packets, &s.vol.rebin(10));
        let r2 = b.finish();
        assert_eq!(r1.stage_slots, r2.stage_slots);
        assert_eq!(r1.qoe_slots, r2.qoe_slots);
    }

    #[test]
    #[should_panic(expected = "divide the stage slot")]
    fn analyze_rejects_incompatible_widths() {
        let bundle = tiny_bundle();
        let mut a = SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
        let vol = nettrace::vol::VolSeries::from_samples(
            vec![Default::default(); 4],
            0,
            300_000, // does not divide 1 s evenly
        );
        a.analyze(&[], &vol);
    }

    #[test]
    fn drift_sink_observes_every_model_without_changing_decisions() {
        use cgc_obs::drift::{DriftConfig, DriftEngine};
        use cgc_obs::Registry;
        let bundle = tiny_bundle();
        let s = session(7);

        let mut plain =
            SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
        plain.analyze(&s.packets, &s.vol);
        let r_plain = plain.finish();

        let registry = Registry::new();
        let (sink, mut engine) = DriftEngine::new(DriftConfig::default(), &registry);
        let mut drifted =
            SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
        drifted.attach_drift(sink);
        drifted.analyze(&s.packets, &s.vol);
        let r_drift = drifted.finish();

        // The probability-pass stage path must agree with the plain
        // classify path, slot for slot.
        assert_eq!(r_plain.stage_slots, r_drift.stage_slots);
        assert_eq!(r_plain.title, r_drift.title);

        // One title observation, one per classified (non-seed) slot, and
        // at most one pattern observation reached the engine.
        engine.drain();
        let snap = registry.snapshot();
        let total = snap.counter("cgc_drift_observations_total").unwrap();
        let classified = r_drift.stage_slots.len() as u64 - 10; // seed slots emit nothing
        assert!(
            total == 1 + classified || total == 2 + classified,
            "observations {total}, classified slots {classified}"
        );
    }

    #[test]
    fn degraded_qos_inputs_surface_in_qoe() {
        let bundle = tiny_bundle();
        let s = session(4);
        let bad_qoe = QoeInputs {
            latency_ms: 150.0,
            loss_rate: 0.05,
            ..QoeInputs::default()
        };
        let mut a = SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), bad_qoe);
        a.analyze(&s.packets, &s.vol);
        let r = a.finish();
        assert_eq!(r.objective_qoe, cgc_domain::QoeLevel::Bad);
        // Context never excuses latency/loss.
        assert_eq!(r.effective_qoe, cgc_domain::QoeLevel::Bad);
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use cgc_domain::{GameTitle, StreamSettings};
    use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};

    fn bundle() -> ModelBundle {
        // Reuse the tiny-bundle builder from the sibling test module.
        super::tests::tiny_bundle_for_streaming()
    }

    fn full_session(seed: u64) -> gamesim::Session {
        let mut generator = SessionGenerator::new();
        generator.generate(&SessionConfig {
            kind: TitleKind::Known(GameTitle::Fortnite),
            settings: StreamSettings::default_pc(),
            gameplay_secs: 60.0,
            fidelity: Fidelity::FullPackets,
            seed,
        })
    }

    #[test]
    fn streaming_matches_batch_analysis() {
        let b = bundle();
        let s = full_session(5);

        let mut batch = SessionAnalyzer::new(&b, AnalyzerConfig::default(), QoeInputs::default());
        batch.analyze_packets(&s.packets);
        let rb = batch.finish();

        let mut stream = SessionAnalyzer::new(&b, AnalyzerConfig::default(), QoeInputs::default());
        for p in &s.packets {
            stream.push_packet(p);
        }
        let rs = stream.finish();

        // Identical title decision (same window contents).
        assert_eq!(rb.title, rs.title);
        // Identical closed slots; streaming may differ by the final partial
        // slot's handling, so compare the common prefix.
        let n = rb.stage_slots.len().min(rs.stage_slots.len());
        assert!(n + 1 >= rb.stage_slots.len());
        assert_eq!(&rb.stage_slots[..n], &rs.stage_slots[..n]);
        assert!((rb.mean_down_mbps - rs.mean_down_mbps).abs() / rb.mean_down_mbps < 0.05);
    }

    #[test]
    fn short_capture_still_gets_a_title_call() {
        let b = bundle();
        let s = full_session(6);
        let mut stream = SessionAnalyzer::new(&b, AnalyzerConfig::default(), QoeInputs::default());
        // Only 2 seconds of packets: the window never closes on its own.
        for p in s.packets.iter().filter(|p| p.ts < 2_000_000) {
            stream.push_packet(p);
        }
        let r = stream.finish();
        // A prediction exists (possibly unknown, but with real confidence).
        assert!(r.title.confidence > 0.0);
    }
}
