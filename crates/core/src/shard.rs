//! Sharded parallel tap front end.
//!
//! One serial [`TapMonitor`] saturates a core long before it saturates an
//! ISP tap. [`ShardedTapMonitor`] scales the front end across worker
//! threads: packets are hashed by normalized five-tuple
//! ([`FiveTuple::shard_hash`]) onto `W` shards, each owned by a dedicated
//! worker thread running its own `TapMonitor` over a shared
//! [`ModelBundle`]. Because the hash is direction-invariant, both
//! directions of a conversation land on the same worker, and because each
//! flow lives on exactly one shard, per-flow packet order is preserved —
//! the sharded monitor produces byte-identical session reports to the
//! serial one (proven by the equivalence tests below).
//!
//! Records travel in batches to amortize channel overhead; control
//! messages (`set_qoe`, `finish_idle`, stats snapshots) are interleaved
//! into the same per-shard queues, so they apply at a well-defined point
//! in each shard's packet stream.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender};
use nettrace::packet::FiveTuple;
use nettrace::pcap::PcapRecord;
use nettrace::units::Micros;
use serde::{Deserialize, Serialize};

use cgc_obs::journal::EventSink;
use cgc_obs::{Gauge, Registry, TraceSink};

use cgc_lifecycle::LiveModel;

use crate::bundle::{ModelBundle, ModelSource};
use crate::metrics::{MonitorMetrics, PipelineMetrics};
use crate::monitor::{MonitorConfig, MonitoredSession, ShardStats, TapMonitor};
use crate::pipeline::QoeInputs;

/// The models every worker shard serves from: the owned, thread-shareable
/// dual of [`ModelSource`]. `Fixed` is the pre-lifecycle deployment shape
/// (one immutable bundle for the process lifetime); `Live` shares a
/// hot-swappable [`LiveModel`] slot, so a publish from any thread
/// redirects every shard's *next* flow admission while in-flight flows
/// finish on the version they pinned.
#[derive(Debug, Clone)]
pub enum SharedModels {
    /// One immutable bundle, shared read-only across shards.
    Fixed(Arc<ModelBundle>),
    /// A hot-swappable versioned slot, shared across shards.
    Live(Arc<LiveModel<ModelBundle>>),
}

impl SharedModels {
    /// Borrows this shared handle as a per-monitor [`ModelSource`].
    pub fn as_source(&self) -> ModelSource<'_> {
        match self {
            SharedModels::Fixed(bundle) => ModelSource::Fixed(bundle),
            SharedModels::Live(slot) => ModelSource::Live(slot),
        }
    }
}

impl From<Arc<ModelBundle>> for SharedModels {
    fn from(bundle: Arc<ModelBundle>) -> SharedModels {
        SharedModels::Fixed(bundle)
    }
}

impl From<Arc<LiveModel<ModelBundle>>> for SharedModels {
    fn from(slot: Arc<LiveModel<ModelBundle>>) -> SharedModels {
        SharedModels::Live(slot)
    }
}

/// One tap observation: timestamp, wire five-tuple, RTP payload length.
pub type TapRecord = (Micros, FiveTuple, u32);

/// Configuration of the sharded front end.
#[derive(Debug, Clone, Copy)]
pub struct ShardedMonitorConfig {
    /// Per-shard monitor configuration (`max_flows` applies per shard).
    pub monitor: MonitorConfig,
    /// Number of worker shards (clamped to ≥ 1).
    pub shards: usize,
    /// Records buffered per shard before a batch is sent (clamped to ≥ 1).
    pub batch_size: usize,
}

impl Default for ShardedMonitorConfig {
    fn default() -> Self {
        ShardedMonitorConfig {
            monitor: MonitorConfig::default(),
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            batch_size: 256,
        }
    }
}

impl ShardedMonitorConfig {
    /// A config with `shards` workers and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        ShardedMonitorConfig {
            shards,
            ..Default::default()
        }
    }
}

/// Aggregated observability snapshot of the sharded front end.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Counters of each worker shard, in shard order.
    pub per_shard: Vec<ShardStats>,
}

impl MonitorStats {
    /// Sums the per-shard counters.
    pub fn total(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for s in &self.per_shard {
            total.merge(s);
        }
        total
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.per_shard.len()
    }
}

enum ShardMsg {
    Batch(Vec<TapRecord>),
    SetQoe(FiveTuple, QoeInputs),
    FinishIdle(Micros, Sender<(Vec<MonitoredSession>, ShardStats)>),
    Stats(Sender<ShardStats>),
}

// One parameter per channel/metric the worker owns; bundling them into a
// struct would just move the argument list behind a constructor.
#[allow(clippy::too_many_arguments)]
fn shard_worker(
    models: SharedModels,
    config: MonitorConfig,
    rx: Receiver<ShardMsg>,
    recycle: Sender<Vec<TapRecord>>,
    metrics: MonitorMetrics,
    pipeline_metrics: PipelineMetrics,
    journal: EventSink,
    trace: TraceSink,
    queue_depth: Arc<Gauge>,
) -> (Vec<MonitoredSession>, ShardStats) {
    // The monitor borrows the shared handle owned by this stack frame, so
    // the worker is 'static while the models stay shared; a `Live` handle
    // re-resolves at every flow admission, so swaps land without restarting
    // the worker.
    let mut monitor =
        TapMonitor::with_metrics(models.as_source(), config, metrics, pipeline_metrics);
    monitor.set_journal(journal);
    monitor.set_trace(trace);
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(mut records) => {
                monitor.ingest_batch(&records);
                queue_depth.dec();
                // Hand the emptied buffer back to the router so the
                // steady-state queue→monitor hand-off allocates nothing
                // (the send fails harmlessly once the router is gone).
                records.clear();
                let _ = recycle.send(records);
            }
            ShardMsg::SetQoe(tuple, qoe) => monitor.set_qoe(&tuple, qoe),
            ShardMsg::FinishIdle(now, reply) => {
                let done = monitor.finish_idle(now);
                let _ = reply.send((done, monitor.stats()));
            }
            ShardMsg::Stats(reply) => {
                let _ = reply.send(monitor.stats());
            }
        }
    }
    // Channel closed: the front end is draining. Finalize everything.
    let out = monitor.finish_all();
    let stats = monitor.stats();
    (out, stats)
}

/// Parallel tap front end: W worker shards, each a [`TapMonitor`].
///
/// The ingest path is the hot path: hashing plus a `Vec` push, with one
/// channel send per `batch_size` records. All heavyweight per-packet work
/// (filtering, flow lookup, analyzer updates) happens on the worker
/// threads.
pub struct ShardedTapMonitor {
    senders: Vec<Sender<ShardMsg>>,
    handles: Vec<JoinHandle<(Vec<MonitoredSession>, ShardStats)>>,
    pending: Vec<Vec<TapRecord>>,
    depth_gauges: Vec<Arc<Gauge>>,
    batch_size: usize,
    /// Emptied batch buffers coming back from the workers, reused for the
    /// next dispatch instead of allocating fresh `Vec`s per batch.
    recycle_rx: Receiver<Vec<TapRecord>>,
}

impl ShardedTapMonitor {
    /// Spawns `config.shards` worker threads over a shared model source
    /// (a fixed `Arc<ModelBundle>` or a hot-swappable
    /// `Arc<LiveModel<ModelBundle>>`), recording telemetry into the
    /// process-wide registry.
    pub fn new(models: impl Into<SharedModels>, config: ShardedMonitorConfig) -> Self {
        Self::with_observability(
            models,
            config,
            Registry::global(),
            cgc_obs::journal::global_sink(),
            cgc_obs::trace::global_sink(),
        )
    }

    /// Spawns the front end recording telemetry into `registry` (used by
    /// tests and fleet runs that need an isolated snapshot). No journal:
    /// flight-recording on an isolated registry requires
    /// [`ShardedTapMonitor::with_registry_and_journal`].
    pub fn with_registry(
        models: impl Into<SharedModels>,
        config: ShardedMonitorConfig,
        registry: &Registry,
    ) -> Self {
        Self::with_registry_and_journal(models, config, registry, EventSink::disabled())
    }

    /// Spawns the front end with both an isolated registry and a
    /// flight-recorder sink; every shard's monitor emits into `journal`.
    /// Span tracing stays disabled: use
    /// [`ShardedTapMonitor::with_observability`] to record stage spans.
    pub fn with_registry_and_journal(
        models: impl Into<SharedModels>,
        config: ShardedMonitorConfig,
        registry: &Registry,
        journal: EventSink,
    ) -> Self {
        Self::with_observability(models, config, registry, journal, TraceSink::disabled())
    }

    /// Spawns the front end with the full observability set: isolated
    /// registry, flight-recorder sink, and span recorder. Every shard's
    /// monitor emits lifecycle events into `journal` and Shard/Slot/
    /// Classifier/Verdict spans into `trace`.
    pub fn with_observability(
        models: impl Into<SharedModels>,
        config: ShardedMonitorConfig,
        registry: &Registry,
        journal: EventSink,
        trace: TraceSink,
    ) -> Self {
        let models = models.into();
        let shards = config.shards.max(1);
        let batch_size = config.batch_size.max(1);
        let monitor_metrics = MonitorMetrics::register(registry);
        let pipeline_metrics = PipelineMetrics::register(registry);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut depth_gauges = Vec::with_capacity(shards);
        let (recycle_tx, recycle_rx) = channel::unbounded();
        for i in 0..shards {
            let (tx, rx) = channel::unbounded();
            let m = models.clone();
            let mc = config.monitor;
            let mm = monitor_metrics.clone();
            let pm = pipeline_metrics.clone();
            let sink = journal.clone();
            let tr = trace.clone();
            let rc = recycle_tx.clone();
            let depth = MonitorMetrics::shard_queue_depth(registry, i);
            let worker_depth = Arc::clone(&depth);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tap-shard-{i}"))
                    .spawn(move || shard_worker(m, mc, rx, rc, mm, pm, sink, tr, worker_depth))
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
            depth_gauges.push(depth);
        }
        ShardedTapMonitor {
            senders,
            handles,
            pending: vec![Vec::new(); shards],
            depth_gauges,
            batch_size,
            recycle_rx,
        }
    }

    /// An empty batch buffer: a recycled one from the workers if any has
    /// come back, else a fresh allocation (start-up only).
    fn take_buf(&self) -> Vec<TapRecord> {
        self.recycle_rx.try_recv().unwrap_or_default()
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Routes one observed datagram to its shard (batched).
    pub fn ingest(&mut self, ts: Micros, wire_tuple: &FiveTuple, payload_len: u32) {
        let shard = wire_tuple.shard(self.senders.len());
        let batch = &mut self.pending[shard];
        batch.push((ts, *wire_tuple, payload_len));
        if batch.len() >= self.batch_size {
            self.flush_shard(shard);
        }
    }

    /// Routes a decoded capture record to its shard.
    pub fn ingest_record(&mut self, record: &PcapRecord) {
        self.ingest(record.ts, &record.tuple, record.payload_len);
    }

    /// Hands one already-drained batch to the workers in a single
    /// dispatch per shard: the batch is partitioned by shard hash
    /// (preserving batch order, hence per-flow order) and each non-empty
    /// partition is sent as one channel message. Records buffered by the
    /// record-at-a-time [`ingest`](Self::ingest) path are flushed first,
    /// so the two paths interleave in arrival order.
    ///
    /// This is the live-ingestion hand-off: the ingest router's drain
    /// batch — sized by its batch policy — becomes the unit of delivery
    /// to the shard workers. A small batch (shallow queues) reaches the
    /// workers immediately instead of lingering in a partially filled
    /// `batch_size` buffer; a large batch (deep queues) amortizes the
    /// per-dispatch partition-and-send cost across thousands of records.
    pub fn ingest_batch(&mut self, records: &[TapRecord]) {
        let shards = self.senders.len();
        if shards == 1 {
            // Degenerate single-shard front end: no partitioning needed.
            self.flush_shard(0);
            let mut buf = self.take_buf();
            buf.extend_from_slice(records);
            self.depth_gauges[0].inc();
            let _ = self.senders[0].send(ShardMsg::Batch(buf));
            return;
        }
        // Partition into recycled buffers; at steady state these come back
        // from the workers already grown to batch capacity.
        let mut parts: Vec<Vec<TapRecord>> = (0..shards).map(|_| self.take_buf()).collect();
        for &(ts, tuple, len) in records {
            parts[tuple.shard(shards)].push((ts, tuple, len));
        }
        for (shard, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            self.flush_shard(shard);
            self.depth_gauges[shard].inc();
            let _ = self.senders[shard].send(ShardMsg::Batch(part));
        }
    }

    /// Overrides the QoS context of one flow on its shard. The shard's
    /// pending batch is flushed first, so the override lands between the
    /// packets sent before and after this call — same semantics as the
    /// serial monitor.
    pub fn set_qoe(&mut self, tuple: &FiveTuple, qoe: QoeInputs) {
        let shard = tuple.shard(self.senders.len());
        self.flush_shard(shard);
        let _ = self.senders[shard].send(ShardMsg::SetQoe(*tuple, qoe));
    }

    /// Flushes all pending batches to the workers without waiting.
    pub fn flush(&mut self) {
        for shard in 0..self.senders.len() {
            self.flush_shard(shard);
        }
    }

    /// Finalizes flows idle since before `now - idle_timeout` on every
    /// shard, returning their reports (shard order, then each shard's
    /// finalization order).
    pub fn finish_idle(&mut self, now: Micros) -> Vec<MonitoredSession> {
        self.flush();
        let replies: Vec<Receiver<(Vec<MonitoredSession>, ShardStats)>> = self
            .senders
            .iter()
            .map(|tx| {
                let (rtx, rrx) = channel::unbounded();
                let _ = tx.send(ShardMsg::FinishIdle(now, rtx));
                rrx
            })
            .collect();
        let mut out = Vec::new();
        for rrx in replies {
            let (sessions, _) = rrx.recv().expect("shard worker alive");
            out.extend(sessions);
        }
        out
    }

    /// Synchronized snapshot of every shard's counters (pending batches
    /// are flushed and counted first).
    pub fn stats(&mut self) -> MonitorStats {
        self.flush();
        let replies: Vec<Receiver<ShardStats>> = self
            .senders
            .iter()
            .map(|tx| {
                let (rtx, rrx) = channel::unbounded();
                let _ = tx.send(ShardMsg::Stats(rtx));
                rrx
            })
            .collect();
        MonitorStats {
            per_shard: replies
                .into_iter()
                .map(|rrx| rrx.recv().expect("shard worker alive"))
                .collect(),
        }
    }

    /// Flushes pending work, drains every shard and joins the workers,
    /// returning all remaining session reports plus the final stats
    /// snapshot.
    pub fn finish_all(mut self) -> (Vec<MonitoredSession>, MonitorStats) {
        self.flush();
        // Dropping the senders closes the channels; each worker finalizes
        // its remaining flows and returns them through its join handle.
        self.senders.clear();
        let mut out = Vec::new();
        let mut stats = MonitorStats::default();
        for handle in self.handles.drain(..) {
            let (sessions, shard_stats) = handle.join().expect("shard worker panicked");
            out.extend(sessions);
            stats.per_shard.push(shard_stats);
        }
        (out, stats)
    }

    fn flush_shard(&mut self, shard: usize) {
        if self.pending[shard].is_empty() {
            return;
        }
        let replacement = self.take_buf();
        let batch = std::mem::replace(&mut self.pending[shard], replacement);
        self.depth_gauges[shard].inc();
        let _ = self.senders[shard].send(ShardMsg::Batch(batch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Platform;
    use cgc_domain::{GameTitle, StreamSettings};
    use gamesim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
    use nettrace::packet::Direction;

    fn bundle() -> ModelBundle {
        crate::pipeline::tests::tiny_bundle_for_streaming()
    }

    /// Eight interleaved sessions of four titles on one tap.
    fn interleaved_feed() -> (Vec<Session>, Vec<TapRecord>) {
        let titles = [
            GameTitle::Fortnite,
            GameTitle::GenshinImpact,
            GameTitle::CsGo,
            GameTitle::Dota2,
        ];
        let mut generator = SessionGenerator::new();
        let sessions: Vec<Session> = (0..8u64)
            .map(|i| {
                generator.generate(&SessionConfig {
                    kind: TitleKind::Known(titles[i as usize % titles.len()]),
                    settings: StreamSettings::default_pc(),
                    gameplay_secs: 25.0,
                    fidelity: Fidelity::FullPackets,
                    seed: 100 + i,
                })
            })
            .collect();
        let mut feed: Vec<TapRecord> = Vec::new();
        for (i, s) in sessions.iter().enumerate() {
            let offset = i as u64 * 3_000_000; // stagger starts by 3 s
            for p in &s.packets {
                let tuple = match p.dir {
                    Direction::Downstream => s.tuple,
                    Direction::Upstream => s.tuple.reversed(),
                };
                feed.push((p.ts + offset, tuple, p.payload_len));
            }
        }
        feed.sort_by_key(|(ts, _, _)| *ts);
        (sessions, feed)
    }

    /// Canonical, comparable rendering of the fields the paper's operator
    /// cares about; JSON makes the comparison structural and total.
    fn render(mut sessions: Vec<MonitoredSession>) -> Vec<String> {
        sessions.sort_by_key(|m| {
            let t = m.tuple.normalized();
            (t.src_ip, t.src_port, t.dst_ip, t.dst_port)
        });
        sessions
            .into_iter()
            .map(|m| {
                format!(
                    "{} {} {} {} {} {}",
                    m.tuple,
                    m.platform,
                    m.confirmed,
                    m.started_at,
                    m.last_seen,
                    serde_json::to_string(&m.report).expect("report serializes")
                )
            })
            .collect()
    }

    #[test]
    fn sharded_matches_serial_on_interleaved_tap() {
        let b = Arc::new(bundle());
        let (_, feed) = interleaved_feed();

        // Serial reference.
        let mut serial = TapMonitor::new(&b, MonitorConfig::default());
        for (ts, tuple, len) in &feed {
            serial.ingest(*ts, tuple, *len);
        }
        let reference = render(serial.finish_all());
        assert_eq!(reference.len(), 8);

        for shards in [1usize, 4] {
            let mut sharded = ShardedTapMonitor::new(
                Arc::clone(&b),
                ShardedMonitorConfig {
                    shards,
                    ..Default::default()
                },
            );
            for (ts, tuple, len) in &feed {
                sharded.ingest(*ts, tuple, *len);
            }
            let (sessions, stats) = sharded.finish_all();
            assert_eq!(
                render(sessions),
                reference,
                "W={shards} diverged from serial"
            );
            let total = stats.total();
            assert_eq!(total.ingested_packets as usize, feed.len());
            assert_eq!(total.finalized_flows, 8);
            assert_eq!(total.ignored_packets, 0);
            assert!(total.batches > 0);
            assert_eq!(stats.shards(), shards);
        }
    }

    #[test]
    fn sharded_finish_idle_matches_serial_cutoff() {
        let b = Arc::new(bundle());
        let (_, feed) = interleaved_feed();
        let last = feed.last().unwrap().0;

        let mut serial = TapMonitor::new(&b, MonitorConfig::default());
        let mut sharded =
            ShardedTapMonitor::new(Arc::clone(&b), ShardedMonitorConfig::with_shards(4));
        // Session ends are staggered over ~20 s, so the first cutoff
        // expires a strict subset of the flows and the second expires the
        // rest — both passes must agree with the serial monitor.
        for (ts, tuple, len) in &feed {
            serial.ingest(*ts, tuple, *len);
            sharded.ingest(*ts, tuple, *len);
        }
        for now in [last + 45_000_000, last + 61_000_000] {
            let a = render(serial.finish_idle(now));
            let c = render(sharded.finish_idle(now));
            assert_eq!(a, c, "finish_idle(now={now}) diverged");
        }
        // Everything expired at the second cutoff; nothing left to drain.
        let (rest, _) = sharded.finish_all();
        assert!(rest.is_empty());
        assert_eq!(serial.finish_all().len(), 0);
    }

    #[test]
    fn sharded_set_qoe_lands_on_right_shard() {
        let b = Arc::new(bundle());
        let mut generator = SessionGenerator::new();
        let s = generator.generate(&SessionConfig {
            kind: TitleKind::Known(GameTitle::R6Siege),
            settings: StreamSettings::default_pc(),
            gameplay_secs: 60.0,
            fidelity: Fidelity::FullPackets,
            seed: 5,
        });
        let mut sharded =
            ShardedTapMonitor::new(Arc::clone(&b), ShardedMonitorConfig::with_shards(4));
        let mid = s.packets.len() / 2;
        let wire = |p: &nettrace::packet::Packet| match p.dir {
            Direction::Downstream => s.tuple,
            Direction::Upstream => s.tuple.reversed(),
        };
        for p in &s.packets[..mid] {
            sharded.ingest(p.ts, &wire(p), p.payload_len);
        }
        sharded.set_qoe(
            &s.tuple,
            QoeInputs {
                latency_ms: 150.0,
                loss_rate: 0.05,
                ..QoeInputs::default()
            },
        );
        for p in &s.packets[mid..] {
            sharded.ingest(p.ts, &wire(p), p.payload_len);
        }
        let (out, _) = sharded.finish_all();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].report.objective_qoe, cgc_domain::QoeLevel::Bad);
        assert_eq!(out[0].platform, Platform::GeForceNow);
    }

    #[test]
    fn stats_snapshot_counts_everything_once() {
        let b = Arc::new(bundle());
        let mut sharded =
            ShardedTapMonitor::new(Arc::clone(&b), ShardedMonitorConfig::with_shards(3));
        let gaming = FiveTuple::udp_v4([10, 0, 0, 1], 49003, [100, 64, 1, 1], 50_000);
        let web = FiveTuple::udp_v4([1, 1, 1, 1], 443, [10, 0, 0, 2], 55_000);
        for i in 0..500u64 {
            sharded.ingest(i * 1_000, &gaming, 1200);
            sharded.ingest(i * 1_000 + 1, &web, 900);
        }
        let stats = sharded.stats();
        let total = stats.total();
        assert_eq!(total.ingested_packets, 500);
        assert_eq!(total.ignored_packets, 500);
        assert_eq!(total.active_flows, 1);
        assert_eq!(stats.per_shard.len(), 3);
        let (out, final_stats) = sharded.finish_all();
        assert_eq!(out.len(), 1);
        assert_eq!(final_stats.total().finalized_flows, 1);
    }
}
