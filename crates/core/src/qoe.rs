//! Objective and effective QoE (§5.3).
//!
//! The ISP's observability module labels each session (or slot) as
//! good / medium / bad by mapping measured QoS — streaming frame rate,
//! throughput, latency, packet loss — onto fixed expected ranges (e.g.
//! below 30 fps or 8 Mbps ⇒ bad). That is the **objective QoE**.
//!
//! The **effective QoE** calibrates the frame-rate and throughput
//! expectations with the classified gameplay context: a Hearthstone
//! session at 6 Mbps or an idle lobby at 20 fps is *fine*, not degraded.
//! Latency and loss expectations stay unchanged — network damage is
//! network damage regardless of context.

use cgc_domain::{ActivityPattern, GameTitle, QoeLevel, Stage};
use nettrace::packet::{Direction, Packet};
use nettrace::units::{Micros, MICROS_PER_SEC};
use serde::{Deserialize, Serialize};

/// Measured QoS metrics of a session or slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosMetrics {
    /// Downstream throughput, Mbps.
    pub throughput_mbps: f64,
    /// Delivered streaming frame rate, fps.
    pub frame_rate: f64,
    /// Network round-trip latency, milliseconds.
    pub latency_ms: f64,
    /// Packet loss rate in `[0, 1]`.
    pub loss_rate: f64,
}

/// The observability platform's fixed expected ranges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveThresholds {
    /// Frame rate below this ⇒ bad (paper example: 30 fps).
    pub bad_fps: f64,
    /// Frame rate below this ⇒ at most medium.
    pub medium_fps: f64,
    /// Throughput below this ⇒ bad (paper example: 8 Mbps).
    pub bad_mbps: f64,
    /// Throughput below this ⇒ at most medium.
    pub medium_mbps: f64,
    /// Latency above this ⇒ bad (the paper flags lag mostly over 70 ms).
    pub bad_latency_ms: f64,
    /// Latency above this ⇒ at most medium.
    pub medium_latency_ms: f64,
    /// Loss above this ⇒ bad.
    pub bad_loss: f64,
    /// Loss above this ⇒ at most medium.
    pub medium_loss: f64,
}

impl Default for ObjectiveThresholds {
    fn default() -> Self {
        ObjectiveThresholds {
            bad_fps: 30.0,
            medium_fps: 45.0,
            bad_mbps: 8.0,
            medium_mbps: 12.0,
            bad_latency_ms: 70.0,
            medium_latency_ms: 40.0,
            bad_loss: 0.02,
            medium_loss: 0.005,
        }
    }
}

fn worst(levels: impl IntoIterator<Item = QoeLevel>) -> QoeLevel {
    levels.into_iter().min().unwrap_or(QoeLevel::Good)
}

fn level_low(value: f64, bad_below: f64, medium_below: f64) -> QoeLevel {
    if value < bad_below {
        QoeLevel::Bad
    } else if value < medium_below {
        QoeLevel::Medium
    } else {
        QoeLevel::Good
    }
}

fn level_high(value: f64, bad_above: f64, medium_above: f64) -> QoeLevel {
    if value > bad_above {
        QoeLevel::Bad
    } else if value > medium_above {
        QoeLevel::Medium
    } else {
        QoeLevel::Good
    }
}

/// Objective QoE: the worst of the four per-metric levels under fixed
/// expected ranges.
pub fn objective_qoe(m: &QosMetrics, thr: &ObjectiveThresholds) -> QoeLevel {
    worst([
        level_low(m.frame_rate, thr.bad_fps, thr.medium_fps),
        level_low(m.throughput_mbps, thr.bad_mbps, thr.medium_mbps),
        level_high(m.latency_ms, thr.bad_latency_ms, thr.medium_latency_ms),
        level_high(m.loss_rate, thr.bad_loss, thr.medium_loss),
    ])
}

/// The gameplay context used for calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameContext {
    /// Classified title, if confident.
    pub title: Option<GameTitle>,
    /// Inferred activity pattern (used when the title is unknown).
    pub pattern: Option<ActivityPattern>,
    /// Player activity stage of the slot (or dominant stage of the session).
    pub stage: Stage,
    /// Bitrate multiplier of the session's negotiated streaming settings
    /// relative to the SD/30 fps floor (prior work detects the device and
    /// resolution tier from traffic; the paper keys its expected ranges to
    /// those per-settings bandwidth clusters). Use 1.0 when unknown.
    pub settings_factor: f64,
    /// Negotiated streaming frame rate of the session, fps; 0 when unknown
    /// (frame-rate expectations then fall back to the stage-scaled
    /// objective bars).
    pub nominal_fps: f64,
}

/// Empirically learned demand expectations per context: the deployment
/// measures each title's (and pattern's) typical active-stage bandwidth
/// *normalized by the settings tier* (the per-settings clusters of
/// Fig. 12) and feeds it back into the calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationTable {
    /// Typical active-stage throughput per catalog title at the SD/30 fps
    /// settings floor, Mbps (multiply by the settings factor for a tier).
    pub title_mbps: Vec<(GameTitle, f64)>,
    /// Typical normalized active-stage throughput per pattern (unknowns).
    pub pattern_mbps: [f64; 2],
    /// Fallback when nothing is known.
    pub default_mbps: f64,
}

impl Default for CalibrationTable {
    /// A neutral table assuming ~5 Mbps-per-settings-unit demand (a
    /// mid-catalog title) — deployments override it from measurement (see
    /// `cgc-deploy`).
    fn default() -> Self {
        CalibrationTable {
            title_mbps: Vec::new(),
            pattern_mbps: [5.0, 5.0],
            default_mbps: 5.0,
        }
    }
}

impl CalibrationTable {
    /// Expected active-stage throughput of a context at its settings tier,
    /// Mbps.
    pub fn expected_active_mbps(&self, ctx: &GameContext) -> f64 {
        let factor = if ctx.settings_factor > 0.0 {
            ctx.settings_factor
        } else {
            1.0
        };
        if let Some(t) = ctx.title {
            if let Some((_, mbps)) = self.title_mbps.iter().find(|(x, _)| *x == t) {
                return *mbps * factor;
            }
        }
        if let Some(p) = ctx.pattern {
            return self.pattern_mbps[p.index()] * factor;
        }
        self.default_mbps * factor
    }

    /// Records a measured typical demand for a title.
    pub fn set_title(&mut self, title: GameTitle, mbps: f64) {
        if let Some(e) = self.title_mbps.iter_mut().find(|(t, _)| *t == title) {
            e.1 = mbps;
        } else {
            self.title_mbps.push((title, mbps));
        }
    }
}

/// How much of the active-stage demand a stage intrinsically needs
/// (§3.3's relative volumetric levels).
pub fn stage_demand_factor(stage: Stage) -> f64 {
    match stage {
        Stage::Active => 1.0,
        Stage::Passive => 0.85,
        Stage::Idle => 0.18,
        Stage::Launch => 0.45,
    }
}

/// How much of the configured frame rate a stage intrinsically needs.
pub fn stage_fps_factor(stage: Stage) -> f64 {
    match stage {
        Stage::Active | Stage::Passive => 1.0,
        Stage::Idle => 0.35,
        Stage::Launch => 0.5,
    }
}

/// Effective QoE: frame-rate and throughput expectations are scaled by the
/// context (title/pattern demand × stage factor); latency and loss
/// expectations stay objective.
pub fn effective_qoe(
    m: &QosMetrics,
    ctx: &GameContext,
    table: &CalibrationTable,
    thr: &ObjectiveThresholds,
) -> QoeLevel {
    let expected = table.expected_active_mbps(ctx) * stage_demand_factor(ctx.stage);
    // Context can only *lower* the bar, never demand more than the
    // objective ranges (a high-demand context still passes at 8 Mbps if
    // nothing is visibly wrong). `expected` is a *typical* level, not a
    // floor, so the bars sit well below it to absorb per-slot encoder
    // variation.
    let bad_mbps = thr.bad_mbps.min(0.35 * expected);
    let medium_mbps = thr.medium_mbps.min(0.6 * expected);
    // Frame-rate expectation: the stage's fraction of the *negotiated*
    // rate when known (a healthy 30 fps card game session is not
    // degraded), else the stage-scaled objective bars.
    let f = stage_fps_factor(ctx.stage);
    let (bad_fps, medium_fps) = if ctx.nominal_fps > 0.0 {
        let expected_fps = ctx.nominal_fps * f;
        (
            thr.bad_fps.min(0.5 * expected_fps),
            thr.medium_fps.min(0.8 * expected_fps),
        )
    } else {
        (thr.bad_fps * f, thr.medium_fps * f)
    };
    worst([
        level_low(m.frame_rate, bad_fps, medium_fps),
        level_low(m.throughput_mbps, bad_mbps, medium_mbps),
        level_high(m.latency_ms, thr.bad_latency_ms, thr.medium_latency_ms),
        level_high(m.loss_rate, thr.bad_loss, thr.medium_loss),
    ])
}

/// Majority QoE level over a session's slot labels (the paper reports the
/// majority label per session); ties resolve to the worse level.
pub fn majority_level(levels: &[QoeLevel]) -> QoeLevel {
    let mut counts = [0usize; 3];
    for l in levels {
        counts[*l as usize] += 1;
    }
    let mut best = QoeLevel::Good;
    let mut best_count = 0;
    for l in [QoeLevel::Good, QoeLevel::Medium, QoeLevel::Bad] {
        if counts[l as usize] >= best_count {
            // `>=` walks toward worse levels on ties.
            if counts[l as usize] > 0 {
                best = l;
                best_count = counts[l as usize];
            }
        }
    }
    if best_count == 0 {
        QoeLevel::Good
    } else {
        best
    }
}

/// Measures the delivered frame rate from downstream RTP marker bits
/// (markers close encoded frames) over the packet window — the gray-box
/// objective QoE estimation of prior work \[32\].
pub fn measure_fps(packets: &[Packet], window: Micros) -> f64 {
    if window == 0 {
        return 0.0;
    }
    let frames = packets
        .iter()
        .filter(|p| p.dir == Direction::Downstream && p.marker)
        .count();
    frames as f64 * MICROS_PER_SEC as f64 / window as f64
}

/// Estimates downstream loss from RTP sequence-number gaps.
pub fn measure_loss(packets: &[Packet]) -> f64 {
    let seqs: Vec<u16> = packets
        .iter()
        .filter(|p| p.dir == Direction::Downstream)
        .map(|p| p.seq)
        .collect();
    if seqs.len() < 2 {
        return 0.0;
    }
    let mut expected = 0u64;
    let mut received = 0u64;
    for w in seqs.windows(2) {
        let gap = w[1].wrapping_sub(w[0]);
        // Reordered or duplicated packets contribute no loss signal.
        if (1..1000).contains(&gap) {
            expected += u64::from(gap);
            received += 1;
        }
    }
    if expected == 0 {
        0.0
    } else {
        1.0 - (received as f64 / expected as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_metrics() -> QosMetrics {
        QosMetrics {
            throughput_mbps: 25.0,
            frame_rate: 60.0,
            latency_ms: 15.0,
            loss_rate: 0.001,
        }
    }

    #[test]
    fn objective_levels() {
        let thr = ObjectiveThresholds::default();
        assert_eq!(objective_qoe(&good_metrics(), &thr), QoeLevel::Good);
        assert_eq!(
            objective_qoe(
                &QosMetrics {
                    frame_rate: 25.0,
                    ..good_metrics()
                },
                &thr
            ),
            QoeLevel::Bad
        );
        assert_eq!(
            objective_qoe(
                &QosMetrics {
                    throughput_mbps: 10.0,
                    ..good_metrics()
                },
                &thr
            ),
            QoeLevel::Medium
        );
        assert_eq!(
            objective_qoe(
                &QosMetrics {
                    latency_ms: 100.0,
                    ..good_metrics()
                },
                &thr
            ),
            QoeLevel::Bad
        );
    }

    #[test]
    fn low_demand_title_is_rescued_by_context() {
        // Hearthstone at 5 Mbps / 24 fps in idle: objectively "bad", but
        // the card game only ever needs ~6 Mbps.
        let thr = ObjectiveThresholds::default();
        let m = QosMetrics {
            throughput_mbps: 5.0,
            frame_rate: 24.0,
            latency_ms: 15.0,
            loss_rate: 0.0,
        };
        assert_eq!(objective_qoe(&m, &thr), QoeLevel::Bad);
        let mut table = CalibrationTable::default();
        table.set_title(GameTitle::Hearthstone, 6.0);
        let ctx = GameContext {
            title: Some(GameTitle::Hearthstone),
            pattern: None,
            stage: Stage::Idle,
            settings_factor: 1.0,
            nominal_fps: 0.0,
        };
        assert_eq!(effective_qoe(&m, &ctx, &table, &thr), QoeLevel::Good);
    }

    #[test]
    fn network_damage_is_not_excused() {
        // High latency stays bad no matter the context.
        let thr = ObjectiveThresholds::default();
        let m = QosMetrics {
            latency_ms: 120.0,
            ..good_metrics()
        };
        let ctx = GameContext {
            title: Some(GameTitle::Hearthstone),
            pattern: None,
            stage: Stage::Idle,
            settings_factor: 1.0,
            nominal_fps: 0.0,
        };
        assert_eq!(
            effective_qoe(&m, &ctx, &CalibrationTable::default(), &thr),
            QoeLevel::Bad
        );
    }

    #[test]
    fn active_stage_of_demanding_title_keeps_the_bar() {
        let thr = ObjectiveThresholds::default();
        let mut table = CalibrationTable::default();
        table.set_title(GameTitle::Fortnite, 40.0);
        let ctx = GameContext {
            title: Some(GameTitle::Fortnite),
            pattern: None,
            stage: Stage::Active,
            settings_factor: 1.0,
            nominal_fps: 0.0,
        };
        let m = QosMetrics {
            throughput_mbps: 6.0,
            frame_rate: 28.0,
            latency_ms: 10.0,
            loss_rate: 0.0,
        };
        // Starved active Fortnite stays bad under both measures.
        assert_eq!(objective_qoe(&m, &thr), QoeLevel::Bad);
        assert_eq!(effective_qoe(&m, &ctx, &table, &thr), QoeLevel::Bad);
    }

    #[test]
    fn pattern_fallback_for_unknown_titles() {
        let table = CalibrationTable {
            pattern_mbps: [25.0, 15.0],
            default_mbps: 5.0,
            ..Default::default()
        };
        let ctx = GameContext {
            title: None,
            pattern: Some(ActivityPattern::ContinuousPlay),
            stage: Stage::Active,
            settings_factor: 1.0,
            nominal_fps: 0.0,
        };
        assert_eq!(table.expected_active_mbps(&ctx), 15.0);
        let none = GameContext {
            title: None,
            pattern: None,
            stage: Stage::Active,
            settings_factor: 2.0,
            nominal_fps: 0.0,
        };
        assert_eq!(table.expected_active_mbps(&none), 10.0);
    }

    #[test]
    fn majority_level_prefers_worse_on_ties() {
        use QoeLevel::*;
        assert_eq!(majority_level(&[Good, Good, Bad]), Good);
        assert_eq!(majority_level(&[Good, Bad]), Bad);
        assert_eq!(majority_level(&[Medium, Medium, Good]), Medium);
        assert_eq!(majority_level(&[]), Good);
    }

    #[test]
    fn fps_measurement_counts_markers() {
        let mut pkts = Vec::new();
        for i in 0..120u64 {
            let mut p = Packet::new(i * 16_666, Direction::Downstream, 1432);
            p.marker = i % 2 == 1; // 60 frames over 2 s
            pkts.push(p);
        }
        let fps = measure_fps(&pkts, 2 * MICROS_PER_SEC);
        assert!((fps - 30.0).abs() < 0.5, "fps {fps}");
        assert_eq!(measure_fps(&pkts, 0), 0.0);
    }

    #[test]
    fn loss_measurement_from_seq_gaps() {
        // Sequences 0..100 with every 10th missing: 10 % loss.
        let pkts: Vec<Packet> = (0..100u16)
            .filter(|s| s % 10 != 9)
            .enumerate()
            .map(|(i, s)| {
                let mut p = Packet::new(i as u64 * 1000, Direction::Downstream, 100);
                p.seq = s;
                p
            })
            .collect();
        let loss = measure_loss(&pkts);
        assert!((loss - 0.1).abs() < 0.02, "loss {loss}");
        assert_eq!(measure_loss(&[]), 0.0);
    }

    #[test]
    fn stage_factors_are_ordered() {
        assert!(stage_demand_factor(Stage::Active) > stage_demand_factor(Stage::Passive));
        assert!(stage_demand_factor(Stage::Passive) > stage_demand_factor(Stage::Idle));
        assert_eq!(
            stage_fps_factor(Stage::Active),
            stage_fps_factor(Stage::Passive)
        );
        assert!(stage_fps_factor(Stage::Idle) < 1.0);
    }
}
