//! Player activity stage classification (§4.3.1).
//!
//! A Random Forest over the four EMA-smoothed peak-relative volumetric
//! attributes of each `I`-second slot. The model is trained with four
//! classes — the three gameplay stages plus the launch stage — so the
//! continuously running classifier can also recognize the launch period
//! without an external boundary oracle; launch predictions are excluded
//! from stage accuracy scoring and reset the pattern accumulator.

use cgc_domain::Stage;
use mlcore::forest::{RandomForest, RandomForestConfig};
use mlcore::{argmax, Classifier, Dataset, FlatForest};
use serde::{Deserialize, Serialize, Value};

/// Class order of the stage classifier: the three gameplay stages in
/// [`Stage::GAMEPLAY`] order, then launch.
pub const STAGE_CLASSES: [Stage; 4] = [Stage::Idle, Stage::Passive, Stage::Active, Stage::Launch];

/// Class id of a stage in [`STAGE_CLASSES`].
pub fn stage_class_id(stage: Stage) -> usize {
    STAGE_CLASSES
        .iter()
        .position(|s| *s == stage)
        .expect("all stages are classes")
}

/// Stage classifier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageClassifierConfig {
    /// Forest hyperparameters.
    pub forest: RandomForestConfig,
}

impl Default for StageClassifierConfig {
    fn default() -> Self {
        StageClassifierConfig {
            forest: RandomForestConfig {
                n_trees: 60,
                max_depth: 10,
                ..Default::default()
            },
        }
    }
}

/// A trained player-activity-stage classifier.
///
/// The pointer forest is kept for training/serialization; inference runs
/// on the [`FlatForest`] compiled from it, which is rebuilt on
/// deserialization (the wire format carries only the forest).
#[derive(Debug, Clone)]
pub struct StageClassifier {
    forest: RandomForest,
    flat: FlatForest,
}

impl Serialize for StageClassifier {
    fn to_value(&self) -> Value {
        // Mirror the derived format of the old `{ forest }` struct so
        // bundles saved before the flat layout still load.
        Value::Object(vec![("forest".to_string(), self.forest.to_value())])
    }
}

impl Deserialize for StageClassifier {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let forest = RandomForest::from_value(v.field("forest")?)?;
        Ok(StageClassifier::from_forest(forest))
    }
}

impl StageClassifier {
    /// Trains on a dataset of 4-feature slot vectors labeled with
    /// [`STAGE_CLASSES`] class ids.
    ///
    /// # Panics
    /// Panics unless the dataset has exactly 4 features and ≤ 4 classes.
    pub fn train(data: &Dataset, config: StageClassifierConfig) -> StageClassifier {
        assert_eq!(data.n_features(), 4, "stage features are 4-dimensional");
        assert!(data.n_classes <= 4, "at most 4 stage classes");
        Self::from_forest(RandomForest::fit(data, &config.forest))
    }

    fn from_forest(forest: RandomForest) -> StageClassifier {
        let flat = forest.to_flat();
        StageClassifier { forest, flat }
    }

    /// Classifies one slot's feature vector into a stage. Runs on the flat
    /// forest with a stack score buffer — no allocation per slot.
    pub fn classify(&self, features: &[f64; 4]) -> Stage {
        let mut scores = [0.0f64; 4];
        let nc = self.flat.n_classes();
        self.flat.predict_proba_into(features, &mut scores[..nc]);
        let id = argmax(&scores[..nc]);
        STAGE_CLASSES[id.min(STAGE_CLASSES.len() - 1)]
    }

    /// Class probabilities in [`STAGE_CLASSES`] order (padded with zeros if
    /// the training data lacked some classes).
    pub fn probabilities(&self, features: &[f64; 4]) -> [f64; 4] {
        let mut p = [0.0f64; 4];
        let nc = self.flat.n_classes();
        self.flat.predict_proba_into(features, &mut p[..nc]);
        p
    }

    /// The underlying trained forest (pointer form).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Content digest of the compiled inference forest (model-registry
    /// artifact verification).
    pub fn flat_checksum(&self) -> u64 {
        self.flat.checksum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic slot features mimicking the §3.3 relative levels:
    /// [down Mbps rel, down pps rel, up Mbps rel, up pps rel].
    fn synth_features(stage: Stage, rng: &mut StdRng) -> [f64; 4] {
        let noisy =
            |base: f64, rng: &mut StdRng| (base + rng.gen_range(-0.06f64..0.06)).clamp(0.0, 1.0);
        match stage {
            Stage::Active => [
                noisy(0.95, rng),
                noisy(0.95, rng),
                noisy(0.9, rng),
                noisy(0.9, rng),
            ],
            Stage::Passive => [
                noisy(0.82, rng),
                noisy(0.85, rng),
                noisy(0.2, rng),
                noisy(0.2, rng),
            ],
            Stage::Idle => [
                noisy(0.18, rng),
                noisy(0.25, rng),
                noisy(0.08, rng),
                noisy(0.08, rng),
            ],
            Stage::Launch => [
                noisy(0.45, rng),
                noisy(0.5, rng),
                noisy(0.04, rng),
                noisy(0.04, rng),
            ],
        }
    }

    fn synth_dataset(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for stage in STAGE_CLASSES {
            for _ in 0..n_per_class {
                x.push(synth_features(stage, &mut rng).to_vec());
                y.push(stage_class_id(stage));
            }
        }
        Dataset::new(x, y)
    }

    #[test]
    fn class_ids_are_stable() {
        assert_eq!(stage_class_id(Stage::Idle), 0);
        assert_eq!(stage_class_id(Stage::Passive), 1);
        assert_eq!(stage_class_id(Stage::Active), 2);
        assert_eq!(stage_class_id(Stage::Launch), 3);
        // Gameplay prefix is compatible with Stage::class_id.
        for s in Stage::GAMEPLAY {
            assert_eq!(stage_class_id(s), s.class_id().unwrap());
        }
    }

    #[test]
    fn separates_the_four_stages() {
        let train = synth_dataset(60, 1);
        let clf = StageClassifier::train(&train, StageClassifierConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        for stage in STAGE_CLASSES {
            let mut correct = 0;
            for _ in 0..50 {
                if clf.classify(&synth_features(stage, &mut rng)) == stage {
                    correct += 1;
                }
            }
            assert!(correct >= 45, "{stage}: {correct}/50");
        }
    }

    #[test]
    fn probabilities_form_a_distribution() {
        let clf = StageClassifier::train(&synth_dataset(30, 3), StageClassifierConfig::default());
        let p = clf.probabilities(&[0.9, 0.9, 0.9, 0.9]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn three_class_training_still_works() {
        // Without launch samples the classifier covers gameplay stages only.
        let mut d = synth_dataset(30, 4);
        let keep: Vec<usize> = (0..d.len()).filter(|&i| d.y[i] < 3).collect();
        d = d.subset(&keep);
        let clf = StageClassifier::train(&d, StageClassifierConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            clf.classify(&synth_features(Stage::Active, &mut rng)),
            Stage::Active
        );
    }

    #[test]
    #[should_panic(expected = "4-dimensional")]
    fn wrong_width_panics() {
        let d = Dataset::new(vec![vec![1.0]], vec![0]);
        let _ = StageClassifier::train(&d, StageClassifierConfig::default());
    }
}
