//! Pipeline telemetry: monitor/shard health and per-stage inference
//! metrics, registered with `cgc-obs`.
//!
//! Two handle sets cover the core crate's live path:
//!
//! * [`MonitorMetrics`] — tap front-end health (packets in/dropped, flow
//!   table occupancy, expiry-wheel evictions, batch counts/latency).
//!   These unify the per-monitor [`ShardStats`](crate::monitor::ShardStats)
//!   counters into process-wide series.
//! * [`PipelineMetrics`] — classifier-stage metrics (feature-extraction
//!   and RF-inference latency histograms, title/stage/pattern decision
//!   counts by label, confidence distributions, QoE calibration flips).
//!
//! Handles are `Arc`s resolved once per monitor/analyzer; recording is a
//! relaxed atomic op. Constructors take a [`Registry`] so tests can
//! assert exact counts against an isolated registry, while production
//! paths default to the cached global set.

use cgc_domain::{ActivityPattern, GameTitle, QoeLevel, Stage};
use cgc_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::{Arc, OnceLock};

/// Prometheus-safe label value: lowercase alphanumerics with `_`.
fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_sep = true;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Tap front-end (monitor + shard) telemetry handles.
#[derive(Debug, Clone)]
pub struct MonitorMetrics {
    /// Packets accepted into some flow's analyzer
    /// (`cgc_monitor_ingested_packets_total`).
    pub ingested: Arc<Counter>,
    /// Packets dropped by the platform filter
    /// (`cgc_monitor_ignored_packets_total`).
    pub ignored: Arc<Counter>,
    /// Flows currently tracked across all monitors
    /// (`cgc_monitor_active_flows`).
    pub active_flows: Arc<Gauge>,
    /// Flows finalized for any reason (`cgc_monitor_finalized_flows_total`).
    pub finalized: Arc<Counter>,
    /// Flows finalized early at the table cap
    /// (`cgc_monitor_evicted_flows_total`).
    pub evicted: Arc<Counter>,
    /// Expiry-wheel entries examined
    /// (`cgc_monitor_expiry_entries_scanned_total`).
    pub expiry_scanned: Arc<Counter>,
    /// Record batches processed (`cgc_monitor_batches_total`).
    pub batches: Arc<Counter>,
    /// Wall time per ingested batch, nanoseconds
    /// (`cgc_monitor_batch_ns`).
    pub batch_ns: Arc<Histogram>,
}

impl MonitorMetrics {
    /// Register (or look up) the monitor series in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            ingested: registry.counter(
                "cgc_monitor_ingested_packets_total",
                "Packets accepted into a flow analyzer at the tap",
            ),
            ignored: registry.counter(
                "cgc_monitor_ignored_packets_total",
                "Packets dropped for lacking a platform signature or failing the pre-filter",
            ),
            active_flows: registry.gauge(
                "cgc_monitor_active_flows",
                "Flows currently tracked across all tap monitors",
            ),
            finalized: registry.counter(
                "cgc_monitor_finalized_flows_total",
                "Flows finalized for any reason (idle, drain or eviction)",
            ),
            evicted: registry.counter(
                "cgc_monitor_evicted_flows_total",
                "Flows finalized early because the flow table hit max_flows",
            ),
            expiry_scanned: registry.counter(
                "cgc_monitor_expiry_entries_scanned_total",
                "Expiry-wheel entries examined while finding idle/evictable flows",
            ),
            batches: registry.counter(
                "cgc_monitor_batches_total",
                "Record batches processed by the sharded front end",
            ),
            batch_ns: registry.histogram(
                "cgc_monitor_batch_ns",
                "Wall time to ingest one record batch, nanoseconds",
            ),
        }
    }

    /// The set registered against [`Registry::global`].
    pub fn global() -> &'static MonitorMetrics {
        static GLOBAL: OnceLock<MonitorMetrics> = OnceLock::new();
        GLOBAL.get_or_init(|| MonitorMetrics::register(Registry::global()))
    }

    /// Per-shard queue-depth gauge (`cgc_shard_queue_depth{shard="i"}`),
    /// created on demand by the sharded front end.
    pub fn shard_queue_depth(registry: &Registry, shard: usize) -> Arc<Gauge> {
        registry.gauge_with(
            "cgc_shard_queue_depth",
            "Batches in flight to a shard worker (sent, not yet processed)",
            &[("shard", &shard.to_string())],
        )
    }
}

/// Classifier-stage telemetry handles.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// Volumetric slots pushed through analyzers
    /// (`cgc_pipeline_slots_total`).
    pub slots: Arc<Counter>,
    /// Slot decisions by stage label, indexed by
    /// [`Stage::class_id`] (`cgc_pipeline_stage_slots_total{stage=}`).
    pub stage_slots: [Arc<Counter>; Stage::ALL.len()],
    /// Per-slot feature-extraction wall time, nanoseconds
    /// (`cgc_pipeline_feature_ns`).
    pub feature_ns: Arc<Histogram>,
    /// Per-slot stage RF inference wall time, nanoseconds
    /// (`cgc_pipeline_stage_infer_ns`).
    pub stage_infer_ns: Arc<Histogram>,
    /// Title RF inference wall time, nanoseconds
    /// (`cgc_pipeline_title_infer_ns`).
    pub title_infer_ns: Arc<Histogram>,
    /// Title decisions by label, indexed by [`GameTitle::index`]
    /// (`cgc_pipeline_title_decisions_total{title=}`).
    pub title_decisions: [Arc<Counter>; GameTitle::ALL.len()],
    /// Title decisions reported unknown
    /// (`cgc_pipeline_title_decisions_total{title="unknown"}`).
    pub title_unknown: Arc<Counter>,
    /// Title decision confidence, percent
    /// (`cgc_pipeline_title_confidence_pct`).
    pub title_confidence_pct: Arc<Histogram>,
    /// Confident pattern decisions by label, indexed by
    /// [`ActivityPattern::index`] (`cgc_pattern_decisions_total{pattern=}`).
    pub pattern_decisions: [Arc<Counter>; ActivityPattern::ALL.len()],
    /// Pattern decision confidence, percent
    /// (`cgc_pattern_confidence_pct`).
    pub pattern_confidence_pct: Arc<Histogram>,
    /// Per-slot objective QoE labels, indexed worst-to-best
    /// (`cgc_qoe_slots_total{kind="objective",level=}`).
    pub qoe_objective: [Arc<Counter>; QoeLevel::ALL.len()],
    /// Per-slot effective QoE labels, indexed worst-to-best
    /// (`cgc_qoe_slots_total{kind="effective",level=}`).
    pub qoe_effective: [Arc<Counter>; QoeLevel::ALL.len()],
    /// Slots where context calibration *raised* the label
    /// (`cgc_qoe_rescued_slots_total`).
    pub qoe_rescued: Arc<Counter>,
    /// Slots where context calibration *lowered* the label
    /// (`cgc_qoe_demoted_slots_total`).
    pub qoe_demoted: Arc<Counter>,
}

impl PipelineMetrics {
    /// Register (or look up) the classifier-stage series in `registry`.
    pub fn register(registry: &Registry) -> Self {
        let stage_slots = Stage::ALL.map(|s| {
            registry.counter_with(
                "cgc_pipeline_stage_slots_total",
                "Slot decisions by classified activity stage",
                &[("stage", &s.to_string())],
            )
        });
        let title_decisions = GameTitle::ALL.map(|t| {
            registry.counter_with(
                "cgc_pipeline_title_decisions_total",
                "Title process decisions by classified label",
                &[("title", &slug(t.name()))],
            )
        });
        let title_unknown = registry.counter_with(
            "cgc_pipeline_title_decisions_total",
            "Title process decisions by classified label",
            &[("title", "unknown")],
        );
        let pattern_decisions = ActivityPattern::ALL.map(|p| {
            registry.counter_with(
                "cgc_pattern_decisions_total",
                "Confident activity-pattern decisions by label",
                &[("pattern", &slug(&p.to_string()))],
            )
        });
        let qoe_level = |kind: &str| {
            QoeLevel::ALL.map(|l| {
                registry.counter_with(
                    "cgc_qoe_slots_total",
                    "Per-slot QoE labels by kind and level",
                    &[("kind", kind), ("level", &l.to_string())],
                )
            })
        };
        Self {
            slots: registry.counter(
                "cgc_pipeline_slots_total",
                "Volumetric slots pushed through session analyzers",
            ),
            stage_slots,
            feature_ns: registry.histogram(
                "cgc_pipeline_feature_ns",
                "Per-slot stage feature extraction wall time, nanoseconds",
            ),
            stage_infer_ns: registry.histogram(
                "cgc_pipeline_stage_infer_ns",
                "Per-slot stage RF inference wall time, nanoseconds",
            ),
            title_infer_ns: registry.histogram(
                "cgc_pipeline_title_infer_ns",
                "Title RF inference wall time, nanoseconds",
            ),
            title_decisions,
            title_unknown,
            title_confidence_pct: registry.histogram(
                "cgc_pipeline_title_confidence_pct",
                "Title decision confidence, percent",
            ),
            pattern_decisions,
            pattern_confidence_pct: registry.histogram(
                "cgc_pattern_confidence_pct",
                "Pattern decision confidence at decision time, percent",
            ),
            qoe_objective: qoe_level("objective"),
            qoe_effective: qoe_level("effective"),
            qoe_rescued: registry.counter(
                "cgc_qoe_rescued_slots_total",
                "Slots where context calibration raised the QoE label above objective",
            ),
            qoe_demoted: registry.counter(
                "cgc_qoe_demoted_slots_total",
                "Slots where context calibration lowered the QoE label below objective",
            ),
        }
    }

    /// The set registered against [`Registry::global`].
    pub fn global() -> &'static PipelineMetrics {
        static GLOBAL: OnceLock<PipelineMetrics> = OnceLock::new();
        GLOBAL.get_or_init(|| PipelineMetrics::register(Registry::global()))
    }

    /// Record one slot's stage decision.
    pub fn record_stage_slot(&self, stage: Stage) {
        let i = Stage::ALL.iter().position(|s| *s == stage).expect("stage");
        self.stage_slots[i].inc();
    }

    /// Record a title decision (label counter + confidence sample).
    pub fn record_title(&self, title: Option<GameTitle>, confidence: f64) {
        match title {
            Some(t) => self.title_decisions[t.index()].inc(),
            None => self.title_unknown.inc(),
        }
        self.title_confidence_pct
            .record((confidence * 100.0).round().max(0.0) as u64);
    }

    /// Record a confident pattern decision.
    pub fn record_pattern(&self, pattern: ActivityPattern, confidence: f64) {
        self.pattern_decisions[pattern.index()].inc();
        self.pattern_confidence_pct
            .record((confidence * 100.0).round().max(0.0) as u64);
    }

    /// Record one closed slot's QoE labels and any calibration flip.
    pub fn record_qoe(&self, objective: QoeLevel, effective: QoeLevel) {
        let idx = |l: QoeLevel| QoeLevel::ALL.iter().position(|x| *x == l).expect("level");
        self.qoe_objective[idx(objective)].inc();
        self.qoe_effective[idx(effective)].inc();
        match effective.cmp(&objective) {
            std::cmp::Ordering::Greater => self.qoe_rescued.inc(),
            std::cmp::Ordering::Less => self.qoe_demoted.inc(),
            std::cmp::Ordering::Equal => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slug_normalizes_names() {
        assert_eq!(slug("Baldur's Gate 3"), "baldur_s_gate_3");
        assert_eq!(slug("CS:GO"), "cs_go");
        assert_eq!(slug("Spectate-and-play"), "spectate_and_play");
        assert_eq!(slug("Fortnite"), "fortnite");
    }

    #[test]
    fn monitor_register_is_idempotent() {
        let r = Registry::new();
        let a = MonitorMetrics::register(&r);
        let b = MonitorMetrics::register(&r);
        a.ingested.inc();
        b.ingested.inc();
        assert_eq!(a.ingested.get(), 2);
    }

    #[test]
    fn pipeline_register_creates_labelled_families() {
        let r = Registry::new();
        let m = PipelineMetrics::register(&r);
        m.record_title(Some(GameTitle::Fortnite), 0.9);
        m.record_title(None, 0.3);
        m.record_pattern(ActivityPattern::ContinuousPlay, 0.8);
        m.record_qoe(QoeLevel::Bad, QoeLevel::Good);
        m.record_qoe(QoeLevel::Good, QoeLevel::Good);
        let snap = r.snapshot();
        assert_eq!(snap.counter("cgc_pipeline_title_decisions_total"), Some(2));
        assert!(snap
            .get_with(
                "cgc_pipeline_title_decisions_total",
                &[("title", "unknown")]
            )
            .is_some());
        assert_eq!(snap.counter("cgc_pattern_decisions_total"), Some(1));
        assert_eq!(snap.counter("cgc_qoe_rescued_slots_total"), Some(1));
        assert_eq!(snap.counter("cgc_qoe_demoted_slots_total"), Some(0));
        assert_eq!(snap.counter("cgc_qoe_slots_total"), Some(4));
        assert_eq!(
            snap.histogram("cgc_pipeline_title_confidence_pct")
                .unwrap()
                .count,
            2
        );
    }

    #[test]
    fn shard_gauges_are_distinct_series() {
        let r = Registry::new();
        let g0 = MonitorMetrics::shard_queue_depth(&r, 0);
        let g1 = MonitorMetrics::shard_queue_depth(&r, 1);
        g0.inc();
        g1.add(2);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("cgc_shard_queue_depth"), Some(3));
    }
}
