//! Player activity stages (§2.1).

use serde::{Deserialize, Serialize};

/// The player activity stage within a cloud gaming session.
///
/// The paper classifies the three gameplay stages (idle, passive, active)
/// continuously; `Launch` is the opening-animation period every session
/// starts with, during which the title classifier operates instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Game launch: the per-title opening animation streamed from the cloud.
    Launch,
    /// Idle: lobby, menus, matchmaking, static scenes — low traffic in both
    /// directions.
    Idle,
    /// Passive: spectating (after elimination, cutscenes) — high downstream,
    /// low upstream.
    Passive,
    /// Active: engaged gameplay — high traffic in both directions.
    Active,
}

impl Stage {
    /// The three classifiable gameplay stages (excludes `Launch`), in the
    /// class-id order used by the stage classifier.
    pub const GAMEPLAY: [Stage; 3] = [Stage::Idle, Stage::Passive, Stage::Active];

    /// All four stages.
    pub const ALL: [Stage; 4] = [Stage::Launch, Stage::Idle, Stage::Passive, Stage::Active];

    /// Class id of a gameplay stage (idle 0, passive 1, active 2).
    /// `Launch` has no class id — the stage classifier never emits it.
    pub fn class_id(self) -> Option<usize> {
        Stage::GAMEPLAY.iter().position(|s| *s == self)
    }

    /// Gameplay stage from its class id.
    pub fn from_class_id(i: usize) -> Option<Stage> {
        Stage::GAMEPLAY.get(i).copied()
    }

    /// True for the three gameplay stages.
    pub fn is_gameplay(self) -> bool {
        self != Stage::Launch
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Launch => write!(f, "launch"),
            Stage::Idle => write!(f, "idle"),
            Stage::Passive => write!(f, "passive"),
            Stage::Active => write!(f, "active"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ids_roundtrip() {
        for s in Stage::GAMEPLAY {
            assert_eq!(Stage::from_class_id(s.class_id().unwrap()), Some(s));
        }
        assert_eq!(Stage::Launch.class_id(), None);
        assert_eq!(Stage::from_class_id(3), None);
    }

    #[test]
    fn launch_is_not_gameplay() {
        assert!(!Stage::Launch.is_gameplay());
        assert!(Stage::GAMEPLAY.iter().all(|s| s.is_gameplay()));
    }

    #[test]
    fn display() {
        assert_eq!(Stage::Passive.to_string(), "passive");
    }
}
