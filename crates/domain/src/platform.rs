//! Cloud gaming platforms.
//!
//! The paper collects traffic on four commercial platforms (§3.1) and its
//! flow-detection signatures cover all of them (§4.1). Each platform has a
//! distinctive server-side UDP port range and a slightly different maximum
//! RTP payload (MTU budget differs per transport framing), which is why the
//! packet-group labeler detects the "full" size per flow instead of
//! hard-coding it.

use serde::{Deserialize, Serialize};

/// Cloud gaming platforms with known streaming signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// NVIDIA GeForce NOW (UDP 49003–49006).
    GeForceNow,
    /// Microsoft Xbox Cloud Gaming (Teredo-range UDP ports).
    XboxCloud,
    /// Amazon Luna (UDP 9988–9999 media range).
    AmazonLuna,
    /// Sony PS5 Cloud Streaming (UDP 9295–9304).
    Ps5Cloud,
}

impl Platform {
    /// All supported platforms.
    pub const ALL: [Platform; 4] = [
        Platform::GeForceNow,
        Platform::XboxCloud,
        Platform::AmazonLuna,
        Platform::Ps5Cloud,
    ];

    /// Matches a server-side UDP port against the platform's signature.
    pub fn matches_port(&self, port: u16) -> bool {
        match self {
            Platform::GeForceNow => (49003..=49006).contains(&port),
            Platform::XboxCloud => (3074..=3076).contains(&port) || port == 9002,
            Platform::AmazonLuna => (9988..=9999).contains(&port),
            Platform::Ps5Cloud => (9295..=9304).contains(&port),
        }
    }

    /// Detects the platform from a server port.
    pub fn from_port(port: u16) -> Option<Platform> {
        Platform::ALL.iter().copied().find(|p| p.matches_port(port))
    }

    /// A server-side UDP port for this platform, parameterized by a small
    /// index so concurrent sessions spread over the signature range.
    pub fn server_port(&self, index: u16) -> u16 {
        match self {
            Platform::GeForceNow => 49003 + index % 4,
            Platform::XboxCloud => 3074 + index % 3,
            Platform::AmazonLuna => 9988 + index % 12,
            Platform::Ps5Cloud => 9295 + index % 10,
        }
    }

    /// Maximum RTP payload on the platform's streaming path, bytes. The
    /// platforms frame their media transport differently (extra FEC /
    /// encryption headers), so the "full" packet size varies — another
    /// reason the labeler detects it per flow.
    pub fn max_payload(&self) -> u32 {
        match self {
            Platform::GeForceNow => 1432,
            Platform::XboxCloud => 1362,
            Platform::AmazonLuna => 1378,
            Platform::Ps5Cloud => 1418,
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Platform::GeForceNow => write!(f, "GeForce NOW"),
            Platform::XboxCloud => write!(f, "Xbox Cloud Gaming"),
            Platform::AmazonLuna => write!(f, "Amazon Luna"),
            Platform::Ps5Cloud => write!(f, "PS5 Cloud Streaming"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_signatures_roundtrip() {
        for p in Platform::ALL {
            for idx in 0..16 {
                let port = p.server_port(idx);
                assert!(p.matches_port(port), "{p} port {port}");
                assert_eq!(Platform::from_port(port), Some(p));
            }
        }
    }

    #[test]
    fn signatures_do_not_overlap() {
        for port in 0..u16::MAX {
            let matches = Platform::ALL
                .iter()
                .filter(|p| p.matches_port(port))
                .count();
            assert!(matches <= 1, "port {port} matches {matches} platforms");
        }
    }

    #[test]
    fn unknown_ports_are_unmatched() {
        assert_eq!(Platform::from_port(443), None);
        assert_eq!(Platform::from_port(0), None);
        assert_eq!(Platform::from_port(50_000), None);
    }

    #[test]
    fn max_payloads_are_plausible() {
        for p in Platform::ALL {
            let mp = p.max_payload();
            assert!((1300..=1460).contains(&mp), "{p}: {mp}");
        }
    }
}
