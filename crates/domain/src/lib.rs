//! # cgc-domain — shared vocabulary
//!
//! Label types and catalog data shared by the traffic generator, the
//! feature extractors and the classification pipeline:
//!
//! * [`GameTitle`], [`Genre`], [`ActivityPattern`] and the Table 1 catalog
//!   of the thirteen most popular GeForce NOW titles in the studied
//!   geography, with their community-defined genres, gameplay activity
//!   patterns and playtime popularity.
//! * [`Stage`] — the player activity stage ladder (launch / idle / passive /
//!   active) that the paper classifies continuously.
//! * [`settings`] — streaming configuration vocabulary (device class, OS,
//!   client software, resolution, frame rate) and the Table 2 lab capture
//!   matrix.
//! * [`QoeLevel`] — the good/medium/bad experience labels the observability
//!   platform assigns and the context calibration corrects.

#![warn(missing_docs)]

pub mod catalog;
pub mod platform;
pub mod settings;
pub mod stage;

pub use catalog::{ActivityPattern, CatalogEntry, GameTitle, Genre, CATALOG};
pub use platform::Platform;
pub use settings::{DeviceClass, LabConfig, Os, Resolution, Software, StreamSettings, LAB_CONFIGS};
pub use stage::Stage;

use serde::{Deserialize, Serialize};

/// Experience level labels used by the network observability platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QoeLevel {
    /// Degraded experience (e.g. frame rate < 30 fps or throughput < 8 Mbps
    /// under the objective mapping).
    Bad,
    /// Borderline experience.
    Medium,
    /// Healthy experience.
    Good,
}

impl QoeLevel {
    /// All levels, worst to best.
    pub const ALL: [QoeLevel; 3] = [QoeLevel::Bad, QoeLevel::Medium, QoeLevel::Good];
}

impl std::fmt::Display for QoeLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QoeLevel::Bad => write!(f, "bad"),
            QoeLevel::Medium => write!(f, "medium"),
            QoeLevel::Good => write!(f, "good"),
        }
    }
}
