//! Game title catalog (paper Table 1).
//!
//! The thirteen most popular cloud game titles on the studied GeForce NOW
//! deployment, contributing over 69 % of total playtime, with the genre the
//! gaming community assigns, the gameplay activity pattern observed in the
//! paper's study, and popularity as a fraction of total playtime.

use serde::{Deserialize, Serialize};

/// The thirteen popular cloud game titles of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GameTitle {
    /// Fortnite (shooter, 37.80 % of playtime).
    Fortnite,
    /// Genshin Impact (role-playing, 20.10 %).
    GenshinImpact,
    /// Baldur's Gate 3 (role-playing, 3.30 %).
    BaldursGate3,
    /// Rainbow Six: Siege (shooter, 1.24 %).
    R6Siege,
    /// Honkai: Star Rail (role-playing, 1.16 %).
    HonkaiStarRail,
    /// Destiny 2 (shooter, 1.15 %).
    Destiny2,
    /// Call of Duty (shooter, 0.97 %).
    CallOfDuty,
    /// Cyberpunk 2077 (role-playing, 0.84 %).
    Cyberpunk2077,
    /// Overwatch 2 (shooter, 0.74 %).
    Overwatch2,
    /// Rocket League (sports, 0.64 %).
    RocketLeague,
    /// CS:GO / CS2 (shooter, 0.61 %).
    CsGo,
    /// Dota 2 (MOBA, 0.55 %).
    Dota2,
    /// Hearthstone (card, 0.04 %).
    Hearthstone,
}

impl GameTitle {
    /// All thirteen titles in Table 1 order (by popularity).
    pub const ALL: [GameTitle; 13] = [
        GameTitle::Fortnite,
        GameTitle::GenshinImpact,
        GameTitle::BaldursGate3,
        GameTitle::R6Siege,
        GameTitle::HonkaiStarRail,
        GameTitle::Destiny2,
        GameTitle::CallOfDuty,
        GameTitle::Cyberpunk2077,
        GameTitle::Overwatch2,
        GameTitle::RocketLeague,
        GameTitle::CsGo,
        GameTitle::Dota2,
        GameTitle::Hearthstone,
    ];

    /// Stable index of the title within [`GameTitle::ALL`]; used as the ML
    /// class id.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|t| *t == self)
            .expect("title in ALL")
    }

    /// Title from its stable index.
    pub fn from_index(i: usize) -> Option<GameTitle> {
        Self::ALL.get(i).copied()
    }

    /// Human-readable title name as printed in the paper.
    pub fn name(self) -> &'static str {
        self.entry().name
    }

    /// The community-defined genre.
    pub fn genre(self) -> Genre {
        self.entry().genre
    }

    /// The gameplay activity pattern the title's sessions follow.
    pub fn pattern(self) -> ActivityPattern {
        self.genre().pattern()
    }

    /// Fraction of total deployment playtime (Table 1 popularity).
    pub fn popularity(self) -> f64 {
        self.entry().popularity
    }

    /// The full catalog row.
    pub fn entry(self) -> &'static CatalogEntry {
        &CATALOG[self.index()]
    }
}

impl std::fmt::Display for GameTitle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Game genres as defined by the gaming community (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Genre {
    /// First/third-person shooters.
    Shooter,
    /// Role-playing games.
    RolePlaying,
    /// Sports games.
    Sports,
    /// Multiplayer online battle arenas.
    Moba,
    /// Card games.
    Card,
}

impl Genre {
    /// All five genres.
    pub const ALL: [Genre; 5] = [
        Genre::Shooter,
        Genre::RolePlaying,
        Genre::Sports,
        Genre::Moba,
        Genre::Card,
    ];

    /// The gameplay activity pattern a genre's sessions follow (§2.2: all
    /// shooter, sports, MOBA and card titles follow spectate-and-play;
    /// role-playing titles follow continuous-play).
    pub fn pattern(self) -> ActivityPattern {
        match self {
            Genre::RolePlaying => ActivityPattern::ContinuousPlay,
            _ => ActivityPattern::SpectateAndPlay,
        }
    }
}

impl std::fmt::Display for Genre {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Genre::Shooter => write!(f, "Shooter"),
            Genre::RolePlaying => write!(f, "Role-playing"),
            Genre::Sports => write!(f, "Sports"),
            Genre::Moba => write!(f, "MOBA"),
            Genre::Card => write!(f, "Card"),
        }
    }
}

/// Gameplay activity patterns (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ActivityPattern {
    /// Repeated idle → active ⇄ passive → idle match cycles (shooters,
    /// sports, MOBA, card games).
    SpectateAndPlay,
    /// Long uninterrupted active stretches with occasional idle scenes and
    /// rare passive moments (role-playing games).
    ContinuousPlay,
}

impl ActivityPattern {
    /// Both patterns.
    pub const ALL: [ActivityPattern; 2] = [
        ActivityPattern::SpectateAndPlay,
        ActivityPattern::ContinuousPlay,
    ];

    /// Stable class id for ML models.
    pub fn index(self) -> usize {
        match self {
            ActivityPattern::SpectateAndPlay => 0,
            ActivityPattern::ContinuousPlay => 1,
        }
    }

    /// Pattern from its stable class id.
    pub fn from_index(i: usize) -> Option<ActivityPattern> {
        Self::ALL.get(i).copied()
    }
}

impl std::fmt::Display for ActivityPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActivityPattern::SpectateAndPlay => write!(f, "Spectate-and-play"),
            ActivityPattern::ContinuousPlay => write!(f, "Continuous-play"),
        }
    }
}

/// One row of the Table 1 catalog. Serializable for report output; never
/// deserialized (the catalog is a compile-time constant).
#[derive(Debug, Clone, Serialize)]
pub struct CatalogEntry {
    /// Title enum value.
    pub title: GameTitle,
    /// Printable name.
    pub name: &'static str,
    /// Community genre.
    pub genre: Genre,
    /// Fraction of total deployment playtime.
    pub popularity: f64,
}

/// The Table 1 catalog, ordered by popularity.
pub const CATALOG: [CatalogEntry; 13] = [
    CatalogEntry {
        title: GameTitle::Fortnite,
        name: "Fortnite",
        genre: Genre::Shooter,
        popularity: 0.3780,
    },
    CatalogEntry {
        title: GameTitle::GenshinImpact,
        name: "Genshin Impact",
        genre: Genre::RolePlaying,
        popularity: 0.2010,
    },
    CatalogEntry {
        title: GameTitle::BaldursGate3,
        name: "Baldur's Gate 3",
        genre: Genre::RolePlaying,
        popularity: 0.0330,
    },
    CatalogEntry {
        title: GameTitle::R6Siege,
        name: "R6: Siege",
        genre: Genre::Shooter,
        popularity: 0.0124,
    },
    CatalogEntry {
        title: GameTitle::HonkaiStarRail,
        name: "Honkai: Star Rail",
        genre: Genre::RolePlaying,
        popularity: 0.0116,
    },
    CatalogEntry {
        title: GameTitle::Destiny2,
        name: "Destiny 2",
        genre: Genre::Shooter,
        popularity: 0.0115,
    },
    CatalogEntry {
        title: GameTitle::CallOfDuty,
        name: "Call of Duty",
        genre: Genre::Shooter,
        popularity: 0.0097,
    },
    CatalogEntry {
        title: GameTitle::Cyberpunk2077,
        name: "Cyberpunk 2077",
        genre: Genre::RolePlaying,
        popularity: 0.0084,
    },
    CatalogEntry {
        title: GameTitle::Overwatch2,
        name: "Overwatch 2",
        genre: Genre::Shooter,
        popularity: 0.0074,
    },
    CatalogEntry {
        title: GameTitle::RocketLeague,
        name: "Rocket League",
        genre: Genre::Sports,
        popularity: 0.0064,
    },
    CatalogEntry {
        title: GameTitle::CsGo,
        name: "CS:GO/CS2",
        genre: Genre::Shooter,
        popularity: 0.0061,
    },
    CatalogEntry {
        title: GameTitle::Dota2,
        name: "Dota 2",
        genre: Genre::Moba,
        popularity: 0.0055,
    },
    CatalogEntry {
        title: GameTitle::Hearthstone,
        name: "Hearthstone",
        genre: Genre::Card,
        popularity: 0.0004,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_consistent_with_enum_order() {
        for (i, entry) in CATALOG.iter().enumerate() {
            assert_eq!(entry.title.index(), i);
            assert_eq!(GameTitle::from_index(i), Some(entry.title));
        }
        assert_eq!(GameTitle::from_index(13), None);
    }

    #[test]
    fn popularity_sums_to_table_total() {
        let total: f64 = CATALOG.iter().map(|e| e.popularity).sum();
        // Table 1 covers "over 69%" of playtime.
        assert!(total > 0.69 && total < 0.70, "total {total}");
    }

    #[test]
    fn catalog_is_sorted_by_popularity() {
        for w in CATALOG.windows(2) {
            assert!(w[0].popularity >= w[1].popularity);
        }
    }

    #[test]
    fn genre_pattern_mapping_matches_paper() {
        // All six shooters, one sports, one MOBA and one card title are
        // spectate-and-play; all four role-playing titles continuous-play.
        let spectate: Vec<_> = GameTitle::ALL
            .iter()
            .filter(|t| t.pattern() == ActivityPattern::SpectateAndPlay)
            .collect();
        assert_eq!(spectate.len(), 9);
        let continuous: Vec<_> = GameTitle::ALL
            .iter()
            .filter(|t| t.pattern() == ActivityPattern::ContinuousPlay)
            .collect();
        assert_eq!(continuous.len(), 4);
        assert!(continuous.iter().all(|t| t.genre() == Genre::RolePlaying));
    }

    #[test]
    fn display_names() {
        assert_eq!(GameTitle::CsGo.to_string(), "CS:GO/CS2");
        assert_eq!(Genre::Moba.to_string(), "MOBA");
        assert_eq!(
            ActivityPattern::ContinuousPlay.to_string(),
            "Continuous-play"
        );
    }

    #[test]
    fn pattern_index_roundtrip() {
        for p in ActivityPattern::ALL {
            assert_eq!(ActivityPattern::from_index(p.index()), Some(p));
        }
        assert_eq!(ActivityPattern::from_index(2), None);
    }
}
