//! Streaming configuration vocabulary and the Table 2 lab capture matrix.
//!
//! The lab dataset spans eight user configurations (device × OS × client
//! software × streaming-setting range). Settings shift a session's absolute
//! bitrate and packet rates; the paper's key observation is that the
//! *relative* launch-stage packet-group structure and the *relative*
//! stage volumetrics are invariant to them.

use serde::{Deserialize, Serialize};

use crate::platform::Platform;

/// Device class of the subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Desktop or laptop.
    Pc,
    /// Phone or tablet.
    Mobile,
    /// Smart TV.
    Tv,
    /// Gaming console.
    Console,
}

/// Operating system of the client device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Os {
    /// Microsoft Windows.
    Windows,
    /// Apple macOS.
    MacOs,
    /// Android.
    Android,
    /// Apple iOS.
    Ios,
    /// Android TV.
    AndroidTv,
    /// Xbox system software.
    Xbox,
}

/// Client software used to stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Software {
    /// The platform's native application.
    NativeApp,
    /// In-browser streaming client.
    Browser,
}

/// Graphics resolution of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Resolution {
    /// Standard definition (480p).
    Sd,
    /// High definition (720p).
    Hd,
    /// Full high definition (1080p).
    Fhd,
    /// Quad high definition (1440p).
    Qhd,
    /// Ultra high definition (2160p).
    Uhd,
}

impl Resolution {
    /// All resolutions, low to high.
    pub const ALL: [Resolution; 5] = [
        Resolution::Sd,
        Resolution::Hd,
        Resolution::Fhd,
        Resolution::Qhd,
        Resolution::Uhd,
    ];

    /// Relative bitrate multiplier of the resolution tier (SD = 1).
    ///
    /// Tiers roughly double the pixel budget; encoders spend sub-linear
    /// bitrate in pixels, giving the 2–4 per-title bandwidth clusters of
    /// paper Fig. 12.
    pub fn bitrate_factor(self) -> f64 {
        match self {
            Resolution::Sd => 1.0,
            Resolution::Hd => 1.6,
            Resolution::Fhd => 2.4,
            Resolution::Qhd => 3.4,
            Resolution::Uhd => 4.8,
        }
    }
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resolution::Sd => write!(f, "SD"),
            Resolution::Hd => write!(f, "HD"),
            Resolution::Fhd => write!(f, "FHD"),
            Resolution::Qhd => write!(f, "QHD"),
            Resolution::Uhd => write!(f, "UHD"),
        }
    }
}

/// One concrete streaming configuration of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamSettings {
    /// Cloud gaming platform streamed from.
    pub platform: Platform,
    /// Device class.
    pub device: DeviceClass,
    /// Operating system.
    pub os: Os,
    /// Client software.
    pub software: Software,
    /// Stream resolution.
    pub resolution: Resolution,
    /// Streaming frame rate in frames per second (30–120 on GeForce NOW).
    pub fps: u32,
}

impl StreamSettings {
    /// A middle-of-the-road default: Windows native app, FHD, 60 fps.
    pub fn default_pc() -> Self {
        StreamSettings {
            platform: Platform::GeForceNow,
            device: DeviceClass::Pc,
            os: Os::Windows,
            software: Software::NativeApp,
            resolution: Resolution::Fhd,
            fps: 60,
        }
    }

    /// Combined bitrate multiplier of resolution and frame rate relative to
    /// the SD/30 fps floor. Frame rate scales bitrate sub-linearly (inter-
    /// frame coding amortizes static content).
    pub fn bitrate_factor(&self) -> f64 {
        let fps_factor = (self.fps as f64 / 30.0).powf(0.6);
        self.resolution.bitrate_factor() * fps_factor
    }
}

/// One row of the Table 2 lab capture matrix: a device/OS/software cell
/// with the resolution span used, the target session count and the total
/// playtime collected.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabConfig {
    /// Device class of the row.
    pub device: DeviceClass,
    /// Operating system.
    pub os: Os,
    /// Client software.
    pub software: Software,
    /// Lowest resolution captured in this row.
    pub res_min: Resolution,
    /// Highest resolution captured in this row.
    pub res_max: Resolution,
    /// Number of sessions captured (Table 2 "#Sessions").
    pub sessions: usize,
    /// Total playtime captured, in hours (Table 2 "Playtime").
    pub playtime_hours: f64,
}

/// The eight lab configurations of Table 2 (531 sessions, 67 hours total).
pub const LAB_CONFIGS: [LabConfig; 8] = [
    LabConfig {
        device: DeviceClass::Pc,
        os: Os::Windows,
        software: Software::NativeApp,
        res_min: Resolution::Sd,
        res_max: Resolution::Uhd,
        sessions: 89,
        playtime_hours: 10.9,
    },
    LabConfig {
        device: DeviceClass::Pc,
        os: Os::Windows,
        software: Software::Browser,
        res_min: Resolution::Sd,
        res_max: Resolution::Qhd,
        sessions: 60,
        playtime_hours: 6.8,
    },
    LabConfig {
        device: DeviceClass::Pc,
        os: Os::MacOs,
        software: Software::NativeApp,
        res_min: Resolution::Sd,
        res_max: Resolution::Uhd,
        sessions: 76,
        playtime_hours: 10.5,
    },
    LabConfig {
        device: DeviceClass::Pc,
        os: Os::MacOs,
        software: Software::Browser,
        res_min: Resolution::Sd,
        res_max: Resolution::Qhd,
        sessions: 61,
        playtime_hours: 7.7,
    },
    LabConfig {
        device: DeviceClass::Mobile,
        os: Os::Android,
        software: Software::NativeApp,
        res_min: Resolution::Fhd,
        res_max: Resolution::Qhd,
        sessions: 73,
        playtime_hours: 9.1,
    },
    LabConfig {
        device: DeviceClass::Mobile,
        os: Os::Ios,
        software: Software::Browser,
        res_min: Resolution::Sd,
        res_max: Resolution::Fhd,
        sessions: 70,
        playtime_hours: 8.8,
    },
    LabConfig {
        device: DeviceClass::Tv,
        os: Os::AndroidTv,
        software: Software::NativeApp,
        res_min: Resolution::Sd,
        res_max: Resolution::Fhd,
        sessions: 48,
        playtime_hours: 6.1,
    },
    LabConfig {
        device: DeviceClass::Console,
        os: Os::Xbox,
        software: Software::Browser,
        res_min: Resolution::Sd,
        res_max: Resolution::Fhd,
        sessions: 54,
        playtime_hours: 7.1,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_matrix_matches_table2_totals() {
        let sessions: usize = LAB_CONFIGS.iter().map(|c| c.sessions).sum();
        let hours: f64 = LAB_CONFIGS.iter().map(|c| c.playtime_hours).sum();
        assert_eq!(sessions, 531);
        assert!((hours - 67.0).abs() < 0.1, "hours {hours}");
    }

    #[test]
    fn resolution_factors_are_monotonic() {
        for w in Resolution::ALL.windows(2) {
            assert!(w[0].bitrate_factor() < w[1].bitrate_factor());
        }
        assert_eq!(Resolution::Sd.bitrate_factor(), 1.0);
    }

    #[test]
    fn settings_bitrate_factor_scales_with_fps() {
        let base = StreamSettings::default_pc();
        let fast = StreamSettings { fps: 120, ..base };
        let slow = StreamSettings { fps: 30, ..base };
        assert!(fast.bitrate_factor() > base.bitrate_factor());
        assert!(slow.bitrate_factor() < base.bitrate_factor());
        // Sub-linear in fps: 4x fps < 4x bitrate.
        assert!(fast.bitrate_factor() / slow.bitrate_factor() < 4.0);
    }

    #[test]
    fn resolution_ranges_are_ordered() {
        for c in &LAB_CONFIGS {
            assert!(c.res_min <= c.res_max);
        }
    }
}
