//! Versioned on-disk model registry.
//!
//! Each artifact is one file, `v<NNNNN>.json`, holding two JSON lines:
//! the [`Manifest`] on line one and the serialized model payload on line
//! two. The manifest records everything an operator needs to audit a
//! rollout — version, train-set fingerprint, and per-forest descriptors
//! (model kind, class space, flat-forest checksum) — plus an FNV-1a
//! digest over the exact payload bytes. Loads verify twice: the byte
//! digest catches storage corruption (bit flips, truncation), and the
//! rebuilt flat-forest checksums catch semantic tampering that byte
//! checks applied after the damage would miss. A damaged artifact is
//! an error, never a quietly mis-classifying model.

use std::fs;
use std::io;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

/// FNV-1a over raw bytes (the registry's storage-integrity digest).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identity of one forest inside an artifact: which model it is, its
/// class space, and the content digest of its flattened node table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelDescriptor {
    /// Stable model name (`title` / `stage` / `pattern`).
    pub model: String,
    /// Number of classes the forest emits.
    pub n_classes: usize,
    /// [`mlcore::flat::FlatForest::checksum`] of the compiled forest.
    pub flat_checksum: u64,
}

/// Per-version artifact metadata, stored as the file's first line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Registry version id (dense, starting at 1).
    pub version: u32,
    /// [`mlcore::data::Dataset::fingerprint`] of the training set (0
    /// when unknown, e.g. a hand-imported artifact).
    pub train_fingerprint: u64,
    /// FNV-1a over the payload line's exact bytes.
    pub payload_checksum: u64,
    /// One descriptor per forest in the artifact.
    pub models: Vec<ModelDescriptor>,
}

/// A value the registry can store: serializable, and able to describe
/// the forests it carries so loads can verify them.
pub trait Artifact: Serialize + Deserialize {
    /// Descriptors of every forest in this artifact, in a stable order.
    fn descriptors(&self) -> Vec<ModelDescriptor>;
}

fn corrupt(version: u32, what: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("registry artifact v{version}: {what}"),
    )
}

/// A directory of versioned, checksummed model artifacts.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// Opens (creating if needed) a registry rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ModelRegistry> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ModelRegistry { dir })
    }

    /// Directory this registry stores artifacts in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path_of(&self, version: u32) -> PathBuf {
        self.dir.join(format!("v{version:05}.json"))
    }

    /// Stores `artifact` as the next version and returns its manifest.
    pub fn store<T: Artifact>(&self, artifact: &T, train_fingerprint: u64) -> io::Result<Manifest> {
        let version = self.latest()?.map_or(0, |m| m.version) + 1;
        let payload = serde::write_compact(&artifact.to_value());
        let manifest = Manifest {
            version,
            train_fingerprint,
            payload_checksum: fnv1a(payload.as_bytes()),
            models: artifact.descriptors(),
        };
        let head = serde::write_compact(&manifest.to_value());
        let tmp = self.dir.join(format!(".v{version:05}.tmp"));
        fs::write(&tmp, format!("{head}\n{payload}\n"))?;
        fs::rename(&tmp, self.path_of(version))?;
        Ok(manifest)
    }

    /// Loads and fully verifies one version.
    pub fn load<T: Artifact>(&self, version: u32) -> io::Result<(T, Manifest)> {
        let text = fs::read_to_string(self.path_of(version))?;
        let (head, payload) = text
            .split_once('\n')
            .ok_or_else(|| corrupt(version, "missing payload line"))?;
        let payload = payload.strip_suffix('\n').unwrap_or(payload);
        let manifest: Manifest = serde_json::from_str(head)
            .map_err(|e| corrupt(version, format_args!("bad manifest: {e}")))?;
        if manifest.version != version {
            return Err(corrupt(
                version,
                format_args!("manifest claims v{}", manifest.version),
            ));
        }
        let digest = fnv1a(payload.as_bytes());
        if digest != manifest.payload_checksum {
            return Err(corrupt(
                version,
                format_args!(
                    "payload checksum mismatch ({digest:#018x} != {:#018x})",
                    manifest.payload_checksum
                ),
            ));
        }
        let artifact: T = serde_json::from_str(payload)
            .map_err(|e| corrupt(version, format_args!("bad payload: {e}")))?;
        let rebuilt = artifact.descriptors();
        if rebuilt != manifest.models {
            return Err(corrupt(
                version,
                format_args!(
                    "forest descriptors diverge from manifest ({rebuilt:?} != {:?})",
                    manifest.models
                ),
            ));
        }
        Ok((artifact, manifest))
    }

    /// All stored manifests, ascending by version. Unreadable files are
    /// surfaced as errors; alien files in the directory are ignored.
    pub fn list(&self) -> io::Result<Vec<Manifest>> {
        let mut versions = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(v) = name
                .strip_prefix('v')
                .and_then(|r| r.strip_suffix(".json"))
                .and_then(|r| r.parse::<u32>().ok())
            {
                versions.push(v);
            }
        }
        versions.sort_unstable();
        versions
            .into_iter()
            .map(|v| {
                let text = fs::read_to_string(self.path_of(v))?;
                let head = text
                    .split_once('\n')
                    .map_or(text.as_str(), |(head, _)| head);
                serde_json::from_str(head)
                    .map_err(|e| corrupt(v, format_args!("bad manifest: {e}")))
            })
            .collect()
    }

    /// Manifest of the newest stored version, if any.
    pub fn latest(&self) -> io::Result<Option<Manifest>> {
        Ok(self.list()?.into_iter().last())
    }

    /// Deletes all but the newest `keep_last` artifacts; returns how
    /// many were removed.
    pub fn prune(&self, keep_last: usize) -> io::Result<usize> {
        let manifests = self.list()?;
        let drop_n = manifests.len().saturating_sub(keep_last);
        for m in &manifests[..drop_n] {
            fs::remove_file(self.path_of(m.version))?;
        }
        Ok(drop_n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::data::Dataset;
    use mlcore::flat::FlatForest;
    use mlcore::forest::{RandomForest, RandomForestConfig};
    use mlcore::Classifier;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "cgc-lifecycle-registry-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    #[derive(Debug, Serialize, Deserialize)]
    struct ToyArtifact {
        forest: FlatForest,
    }

    impl Artifact for ToyArtifact {
        fn descriptors(&self) -> Vec<ModelDescriptor> {
            vec![ModelDescriptor {
                model: "toy".into(),
                n_classes: self.forest.n_classes(),
                flat_checksum: self.forest.checksum(),
            }]
        }
    }

    fn toy(seed: u64) -> ToyArtifact {
        let data = Dataset::new(
            (0..60)
                .map(|i| vec![f64::from(i % 3) + (i as f64) * 1e-3, seed as f64])
                .collect(),
            (0..60).map(|i| i % 3).collect(),
        );
        let forest = RandomForest::fit(
            &data,
            &RandomForestConfig {
                n_trees: 5,
                seed,
                ..Default::default()
            },
        );
        ToyArtifact {
            forest: forest.into_flat(),
        }
    }

    #[test]
    fn store_load_list_prune_roundtrip() {
        let dir = scratch_dir("roundtrip");
        let reg = ModelRegistry::open(&dir).unwrap();
        assert!(reg.latest().unwrap().is_none());

        let m1 = reg.store(&toy(1), 0xAAAA).unwrap();
        let m2 = reg.store(&toy(2), 0xBBBB).unwrap();
        let m3 = reg.store(&toy(3), 0xCCCC).unwrap();
        assert_eq!((m1.version, m2.version, m3.version), (1, 2, 3));

        let (art, manifest) = reg.load::<ToyArtifact>(2).unwrap();
        assert_eq!(manifest.train_fingerprint, 0xBBBB);
        assert_eq!(art.forest.checksum(), toy(2).forest.checksum());

        let listed = reg.list().unwrap();
        assert_eq!(
            listed.iter().map(|m| m.version).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(reg.latest().unwrap().unwrap().version, 3);

        assert_eq!(reg.prune(1).unwrap(), 2);
        assert_eq!(reg.list().unwrap().len(), 1);
        assert!(reg.load::<ToyArtifact>(1).is_err());
        assert!(reg.load::<ToyArtifact>(3).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_artifacts_are_rejected() {
        let dir = scratch_dir("corrupt");
        let reg = ModelRegistry::open(&dir).unwrap();
        let manifest = reg.store(&toy(9), 7).unwrap();
        let path = reg.path_of(manifest.version);
        let pristine = fs::read_to_string(&path).unwrap();

        // Bit-flip inside the payload: byte checksum catches it.
        let mut bytes = pristine.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = reg.load::<ToyArtifact>(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");

        // Truncation: parse or checksum failure, never a model.
        fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        assert!(reg.load::<ToyArtifact>(1).is_err());

        // Intact file loads again.
        fs::write(&path, &pristine).unwrap();
        assert!(reg.load::<ToyArtifact>(1).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn descriptor_divergence_is_rejected() {
        let dir = scratch_dir("descriptor");
        let reg = ModelRegistry::open(&dir).unwrap();
        reg.store(&toy(4), 7).unwrap();
        let path = reg.path_of(1);
        let text = fs::read_to_string(&path).unwrap();
        let (head, payload) = text.split_once('\n').unwrap();
        // Re-checksum a *swapped* payload so the byte digest passes but
        // the manifest's forest descriptors no longer match: only the
        // semantic check can catch this.
        let other = serde::write_compact(&toy(5).to_value());
        let patched_head = head.replace(
            &format!(
                "\"payload_checksum\":{}",
                fnv1a(payload.trim_end().as_bytes())
            ),
            &format!("\"payload_checksum\":{}", fnv1a(other.as_bytes())),
        );
        assert_ne!(patched_head, head, "test must actually patch the digest");
        fs::write(&path, format!("{patched_head}\n{other}\n")).unwrap();
        let err = reg.load::<ToyArtifact>(1).unwrap_err();
        assert!(
            err.to_string().contains("descriptors diverge"),
            "unexpected error: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
