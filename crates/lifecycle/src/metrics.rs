//! The `cgc_model_version` / `cgc_lifecycle_*` metric families.
//!
//! | family | type | labels | meaning |
//! |---|---|---|---|
//! | `cgc_model_version` | gauge | `model` | registry version serving live traffic |
//! | `cgc_lifecycle_shadow_version` | gauge | — | candidate riding shadow (0 = none) |
//! | `cgc_lifecycle_mirrored_total` | counter | `model` | decisions mirrored to the candidate |
//! | `cgc_lifecycle_agreement_pct` | gauge | `model` | live/candidate agreement over mirrored decisions |
//! | `cgc_lifecycle_accuracy_delta_milli` | gauge | `model` | candidate-minus-live truth-joined accuracy, in thousandths (negative = regression) |
//! | `cgc_lifecycle_promotions_total` | counter | — | candidates promoted live |
//! | `cgc_lifecycle_rollbacks_total` | counter | — | live versions rolled back |

use std::sync::Arc;

use cgc_obs::{Counter, Gauge, ModelKind, Registry};

use crate::shadow::KindScore;

/// Dense array index of a [`ModelKind`] (`ALL` order).
pub(crate) fn kind_index(kind: ModelKind) -> usize {
    match kind {
        ModelKind::Title => 0,
        ModelKind::Stage => 1,
        ModelKind::Pattern => 2,
    }
}

/// Pre-registered handles for the lifecycle metric families.
#[derive(Debug, Clone)]
pub struct LifecycleMetrics {
    model_version: [Arc<Gauge>; 3],
    shadow_version: Arc<Gauge>,
    mirrored: [Arc<Counter>; 3],
    agreement_pct: [Arc<Gauge>; 3],
    accuracy_delta_milli: [Arc<Gauge>; 3],
    promotions: Arc<Counter>,
    rollbacks: Arc<Counter>,
}

impl LifecycleMetrics {
    /// Registers every lifecycle family in `registry` (idempotent: the
    /// registry deduplicates by name + labels).
    pub fn register(registry: &Registry) -> LifecycleMetrics {
        let per_model = |name: &str, help: &str| {
            ModelKind::ALL.map(|kind| registry.gauge_with(name, help, &[("model", kind.name())]))
        };
        LifecycleMetrics {
            model_version: per_model(
                "cgc_model_version",
                "Model registry version currently serving live traffic",
            ),
            shadow_version: registry.gauge(
                "cgc_lifecycle_shadow_version",
                "Registry version riding shadow evaluation (0 = no candidate)",
            ),
            mirrored: ModelKind::ALL.map(|kind| {
                registry.counter_with(
                    "cgc_lifecycle_mirrored_total",
                    "Live decisions mirrored to the shadow candidate",
                    &[("model", kind.name())],
                )
            }),
            agreement_pct: per_model(
                "cgc_lifecycle_agreement_pct",
                "Live/candidate agreement over mirrored decisions, percent",
            ),
            accuracy_delta_milli: per_model(
                "cgc_lifecycle_accuracy_delta_milli",
                "Candidate minus live truth-joined accuracy, thousandths (negative = candidate regresses)",
            ),
            promotions: registry.counter(
                "cgc_lifecycle_promotions_total",
                "Shadow candidates promoted to live",
            ),
            rollbacks: registry.counter(
                "cgc_lifecycle_rollbacks_total",
                "Live model versions rolled back",
            ),
        }
    }

    /// Stamps the version now serving live traffic on every model gauge
    /// (the bundle swaps as a unit, so all three move together).
    pub fn set_live_version(&self, version: u32) {
        for gauge in &self.model_version {
            gauge.set(i64::from(version));
        }
    }

    /// Stamps (or clears, with `None`) the shadow candidate's version.
    pub fn set_shadow_version(&self, version: Option<u32>) {
        self.shadow_version.set(version.map_or(0, i64::from));
    }

    /// Publishes one kind's A/B scoreboard reading.
    pub fn record_shadow_score(&self, score: &KindScore) {
        let i = kind_index(score.kind);
        // Counters only move forward: add the delta since last sync.
        let behind = score.mirrored.saturating_sub(self.mirrored[i].get());
        self.mirrored[i].add(behind);
        self.agreement_pct[i].set((score.agreement * 100.0).round() as i64);
        self.accuracy_delta_milli[i].set((score.accuracy_delta() * 1000.0).round() as i64);
    }

    /// Counts a promotion.
    pub fn record_promotion(&self) {
        self.promotions.inc();
    }

    /// Counts a rollback.
    pub fn record_rollback(&self) {
        self.rollbacks.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::AbScore;

    #[test]
    fn families_register_and_sync() {
        let registry = Registry::new();
        let metrics = LifecycleMetrics::register(&registry);
        metrics.set_live_version(3);
        metrics.set_shadow_version(Some(4));
        metrics.record_promotion();

        let ab = AbScore::new();
        for _ in 0..10 {
            ab.observe(ModelKind::Pattern, 1, 1, Some(1));
        }
        for _ in 0..10 {
            ab.observe(ModelKind::Pattern, 0, 1, Some(1));
        }
        ab.sync(&metrics);
        // Sync twice: counters must not double-count.
        ab.sync(&metrics);

        let text = cgc_obs::export::prometheus(&registry.snapshot());
        assert!(
            text.contains("cgc_model_version{model=\"title\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("cgc_model_version{model=\"pattern\"} 3"),
            "{text}"
        );
        assert!(text.contains("cgc_lifecycle_shadow_version 4"), "{text}");
        assert!(
            text.contains("cgc_lifecycle_mirrored_total{model=\"pattern\"} 20"),
            "{text}"
        );
        assert!(
            text.contains("cgc_lifecycle_agreement_pct{model=\"pattern\"} 50"),
            "{text}"
        );
        assert!(
            text.contains("cgc_lifecycle_accuracy_delta_milli{model=\"pattern\"} 500"),
            "{text}"
        );
        assert!(text.contains("cgc_lifecycle_promotions_total 1"), "{text}");
        assert!(text.contains("cgc_lifecycle_rollbacks_total 0"), "{text}");

        metrics.set_shadow_version(None);
        let text = cgc_obs::export::prometheus(&registry.snapshot());
        assert!(text.contains("cgc_lifecycle_shadow_version 0"), "{text}");
    }
}
