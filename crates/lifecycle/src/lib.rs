//! `cgc-lifecycle` — the model lifecycle control plane.
//!
//! The classifiers this stack serves cannot freeze at train time: the
//! cloud-gaming catalog churns monthly and per-title traffic signatures
//! shift as the platform evolves, so the paper's authors explicitly
//! retrain to track it. The observability layer already raises the alarm
//! (label-free drift detection in `cgc_obs::drift`) and keeps the
//! evidence (journaled per-flow decisions); this crate is the subsystem
//! that *acts* on the alarm:
//!
//! * [`registry::ModelRegistry`] — a versioned on-disk artifact store.
//!   Every artifact carries a manifest (version, train-set fingerprint,
//!   per-forest class space and flat-forest checksum, whole-payload
//!   byte checksum) and is verified on load: truncated, field-stripped,
//!   or value-tampered artifacts are rejected, never served.
//! * [`LiveModel`] — an arc-swap-style hot slot. Readers pin a versioned
//!   snapshot with one atomic load and finish their flow on it; a
//!   publisher swaps the live pointer with one atomic store. No locks on
//!   the read path, no torn reads, zero pipeline stall.
//! * [`shadow::AbScore`] — A/B shadow evaluation. While a candidate
//!   rides shadow, every mirrored decision scores live-vs-candidate
//!   agreement and (where ground truth exists) truth-joined accuracy
//!   deltas, feeding the promote/hold verdict and the
//!   `cgc_lifecycle_*` metric families ([`metrics::LifecycleMetrics`]).
//!
//! The deploy layer composes these into the full loop: drift alarm →
//! re-label journaled flows → fit a candidate off-thread → register →
//! shadow-evaluate → promote (or hold), with instant rollback.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Mutex;

pub mod metrics;
pub mod registry;
pub mod shadow;

pub use metrics::LifecycleMetrics;
pub use registry::{Artifact, Manifest, ModelDescriptor, ModelRegistry};
pub use shadow::{AbScore, Assessment, KindScore, Verdict};

/// A value paired with the registry version it was published under.
#[derive(Debug)]
pub struct Versioned<T> {
    version: u32,
    value: T,
}

impl<T> Versioned<T> {
    /// Registry version of this snapshot.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The pinned value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::Deref for Versioned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

/// An atomically hot-swappable model slot.
///
/// The read path is one `Acquire` pointer load: [`LiveModel::load`]
/// returns a [`Versioned`] reference that stays valid for the slot's
/// whole lifetime, so a flow admitted before a swap finishes on the
/// version it pinned while new admissions see the new one — the
/// arc-swap idiom, minus the external dependency. Publishing
/// ([`LiveModel::publish`] / [`LiveModel::publish_as`]) and rollback
/// take a mutex, but only against other writers; readers never block.
///
/// Retired versions are parked, not dropped, which is what makes the
/// lock-free read path sound without epoch reclamation: memory is
/// bounded by the number of swaps over the slot's lifetime (a handful
/// of model bundles in any real deployment), and every parked version
/// remains a valid instant-rollback target.
pub struct LiveModel<T> {
    current: AtomicPtr<Versioned<T>>,
    /// Every version ever published, kept alive for the slot's lifetime.
    /// The boxes' heap allocations are address-stable, so raw pointers
    /// handed out by `load` never dangle even as this vec grows.
    versions: Mutex<Vec<Box<Versioned<T>>>>,
}

impl<T> LiveModel<T> {
    /// Creates a slot serving `initial` as version 1.
    pub fn new(initial: T) -> LiveModel<T> {
        LiveModel::new_as(1, initial)
    }

    /// Creates a slot serving `initial` under an explicit registry
    /// version id.
    pub fn new_as(version: u32, initial: T) -> LiveModel<T> {
        let mut boxed = Box::new(Versioned {
            version,
            value: initial,
        });
        let ptr: *mut Versioned<T> = &mut *boxed;
        LiveModel {
            current: AtomicPtr::new(ptr),
            versions: Mutex::new(vec![boxed]),
        }
    }

    /// Pins the live version: one `Acquire` load, no locks. The returned
    /// reference remains valid (and keeps serving its version) for the
    /// slot's lifetime, regardless of later swaps.
    pub fn load(&self) -> &Versioned<T> {
        // SAFETY: the pointer was produced from a `Box` parked in
        // `self.versions`, which never shrinks and is only dropped with
        // the slot itself; `&self` outlives neither.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    /// Version id currently being served to new pins.
    pub fn version(&self) -> u32 {
        self.load().version
    }

    /// Publishes `value` as the next sequential version and makes it
    /// live. Returns the assigned version id.
    pub fn publish(&self, value: T) -> u32 {
        let mut versions = self.versions.lock().expect("LiveModel poisoned");
        let version = versions.iter().map(|v| v.version).max().unwrap_or(0) + 1;
        let mut boxed = Box::new(Versioned { version, value });
        let ptr: *mut Versioned<T> = &mut *boxed;
        versions.push(boxed);
        self.current.store(ptr, Ordering::Release);
        version
    }

    /// Publishes `value` under an explicit registry version id and makes
    /// it live.
    ///
    /// # Panics
    /// Panics if `version` was already published into this slot.
    pub fn publish_as(&self, version: u32, value: T) -> u32 {
        let mut versions = self.versions.lock().expect("LiveModel poisoned");
        assert!(
            versions.iter().all(|v| v.version != version),
            "version {version} already published"
        );
        let mut boxed = Box::new(Versioned { version, value });
        let ptr: *mut Versioned<T> = &mut *boxed;
        versions.push(boxed);
        // Release pairs with the Acquire in `load`: a reader that sees
        // the new pointer sees the fully initialized Versioned.
        self.current.store(ptr, Ordering::Release);
        version
    }

    /// Rolls the live pointer back to an already-published version.
    /// Instant (one atomic store); returns `false` if the version was
    /// never published into this slot.
    pub fn rollback_to(&self, version: u32) -> bool {
        let mut versions = self.versions.lock().expect("LiveModel poisoned");
        match versions.iter_mut().find(|v| v.version == version) {
            Some(boxed) => {
                let ptr: *mut Versioned<T> = &mut **boxed;
                self.current.store(ptr, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Number of versions parked in the slot (all remain pinnable).
    pub fn versions_alive(&self) -> usize {
        self.versions.lock().expect("LiveModel poisoned").len()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for LiveModel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveModel")
            .field("version", &self.version())
            .field("versions_alive", &self.versions_alive())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn publish_and_rollback_swap_the_served_version() {
        let slot = LiveModel::new("v1 payload");
        assert_eq!(slot.version(), 1);
        assert_eq!(*slot.load().value(), "v1 payload");

        let pinned = slot.load();
        assert_eq!(slot.publish("v2 payload"), 2);
        assert_eq!(slot.version(), 2);
        // The pre-swap pin still serves the old version.
        assert_eq!(pinned.version(), 1);
        assert_eq!(*pinned.value(), "v1 payload");

        assert!(slot.rollback_to(1));
        assert_eq!(slot.version(), 1);
        assert!(!slot.rollback_to(99));
        assert_eq!(slot.versions_alive(), 2);
    }

    #[test]
    fn explicit_version_ids_track_the_registry() {
        let slot = LiveModel::new_as(7, 70u64);
        assert_eq!(slot.version(), 7);
        assert_eq!(slot.publish_as(9, 90), 9);
        assert_eq!(**slot.load(), 90);
        // Sequential publish continues past the explicit id.
        assert_eq!(slot.publish(100), 10);
    }

    #[test]
    #[should_panic(expected = "already published")]
    fn duplicate_version_ids_are_rejected() {
        let slot = LiveModel::new(1u32);
        slot.publish_as(1, 2);
    }

    /// Readers hammering `load` while a writer swaps must never observe
    /// a torn pair: each version's payload is derived from its version
    /// id, so any mismatch would prove a torn read.
    #[test]
    fn concurrent_swaps_never_tear() {
        // Version 1's payload, matching the version * 1_000_003 invariant.
        let slot = Arc::new(LiveModel::new(1_000_003u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let pin = slot.load();
                        assert_eq!(
                            *pin.value(),
                            u64::from(pin.version()) * 1_000_003,
                            "torn read"
                        );
                        seen = seen.max(pin.version());
                    }
                    seen
                })
            })
            .collect();
        for v in 2..=50u32 {
            slot.publish_as(v, u64::from(v) * 1_000_003);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(slot.version(), 50);
        assert_eq!(slot.versions_alive(), 50);
    }
}
