//! A/B shadow evaluation: live-vs-candidate agreement and truth-joined
//! accuracy deltas.
//!
//! While a candidate model rides shadow, the deploy layer mirrors every
//! live decision to it and records both answers here — plus the ground
//! truth where the replay harness knows it. [`AbScore`] is a lock-free
//! accumulator (relaxed atomics, safe to share across fleet workers);
//! [`AbScore::assess`] turns the counters into a promote/hold verdict,
//! and [`AbScore::sync`] publishes them as `cgc_lifecycle_*` gauges.

use std::sync::atomic::{AtomicU64, Ordering};

use cgc_obs::ModelKind;

use crate::metrics::{kind_index, LifecycleMetrics};

/// Mirrored-decision counters for one model kind.
#[derive(Debug, Default)]
struct KindCounters {
    /// Decisions mirrored to the candidate.
    n: AtomicU64,
    /// Mirrored decisions where both models answered the same class.
    agree: AtomicU64,
    /// Mirrored decisions with ground truth attached.
    truth_n: AtomicU64,
    /// Truth-joined decisions the live model got right.
    live_correct: AtomicU64,
    /// Truth-joined decisions the candidate got right.
    cand_correct: AtomicU64,
}

/// Point-in-time reading of one model kind's A/B counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindScore {
    /// Model the counters describe.
    pub kind: ModelKind,
    /// Decisions mirrored to the candidate.
    pub mirrored: u64,
    /// Live/candidate agreement ratio over mirrored decisions (1.0 when
    /// nothing was mirrored yet).
    pub agreement: f64,
    /// Truth-joined sample count.
    pub truth_n: u64,
    /// Live model accuracy over the truth-joined samples.
    pub live_accuracy: f64,
    /// Candidate accuracy over the truth-joined samples.
    pub cand_accuracy: f64,
}

impl KindScore {
    /// Candidate-minus-live accuracy delta (positive = candidate wins).
    pub fn accuracy_delta(&self) -> f64 {
        self.cand_accuracy - self.live_accuracy
    }
}

/// The promote/hold decision for a shadow candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The candidate is safe and better: swap it live.
    Promote,
    /// Keep the live model; see [`Assessment::reason`].
    Hold,
}

/// A verdict plus the evidence it was reached on.
#[derive(Debug, Clone)]
pub struct Assessment {
    /// Promote or hold.
    pub verdict: Verdict,
    /// Human-readable justification (surfaced on `/models`).
    pub reason: String,
    /// Per-kind scores backing the verdict.
    pub scores: Vec<KindScore>,
}

/// Lock-free live-vs-candidate scoreboard shared across fleet workers.
#[derive(Debug, Default)]
pub struct AbScore {
    per: [KindCounters; 3],
}

/// Truth-joined samples a kind needs before its delta is trusted.
const MIN_TRUTH_SAMPLES: u64 = 20;
/// Accuracy loss (absolute) beyond which a kind blocks promotion.
const REGRESSION_FLOOR: f64 = 0.02;

impl AbScore {
    /// Creates an empty scoreboard.
    pub fn new() -> AbScore {
        AbScore::default()
    }

    /// Records one mirrored decision: the class each model answered,
    /// plus the ground-truth class when the harness knows it.
    pub fn observe(&self, kind: ModelKind, live: u16, candidate: u16, truth: Option<u16>) {
        let c = &self.per[kind_index(kind)];
        c.n.fetch_add(1, Ordering::Relaxed);
        if live == candidate {
            c.agree.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(t) = truth {
            c.truth_n.fetch_add(1, Ordering::Relaxed);
            if live == t {
                c.live_correct.fetch_add(1, Ordering::Relaxed);
            }
            if candidate == t {
                c.cand_correct.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current counters for one model kind.
    pub fn score(&self, kind: ModelKind) -> KindScore {
        let c = &self.per[kind_index(kind)];
        let n = c.n.load(Ordering::Relaxed);
        let truth_n = c.truth_n.load(Ordering::Relaxed);
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        KindScore {
            kind,
            mirrored: n,
            agreement: ratio(c.agree.load(Ordering::Relaxed), n),
            truth_n,
            live_accuracy: ratio(c.live_correct.load(Ordering::Relaxed), truth_n),
            cand_accuracy: ratio(c.cand_correct.load(Ordering::Relaxed), truth_n),
        }
    }

    /// Scores for every tracked model kind.
    pub fn scores(&self) -> Vec<KindScore> {
        ModelKind::ALL.iter().map(|&k| self.score(k)).collect()
    }

    /// Reaches a promote/hold verdict from the current counters.
    ///
    /// Promotion requires every kind with enough truth-joined samples
    /// (≥ 20) to hold within two accuracy points of live, and at least
    /// one such kind to strictly improve. Anything thinner than that —
    /// including no truth joins at all — holds: shadow evaluation is an
    /// evidence gate, and absence of evidence holds the line.
    pub fn assess(&self) -> Assessment {
        let scores = self.scores();
        let evaluated: Vec<&KindScore> = scores
            .iter()
            .filter(|s| s.truth_n >= MIN_TRUTH_SAMPLES)
            .collect();
        if evaluated.is_empty() {
            return Assessment {
                verdict: Verdict::Hold,
                reason: format!(
                    "insufficient evidence: no model reached {MIN_TRUTH_SAMPLES} truth-joined samples"
                ),
                scores,
            };
        }
        if let Some(worst) = evaluated
            .iter()
            .find(|s| s.accuracy_delta() < -REGRESSION_FLOOR)
        {
            let reason = format!(
                "candidate regresses {} accuracy by {:.1} points ({} truth-joined samples)",
                worst.kind.name(),
                -worst.accuracy_delta() * 100.0,
                worst.truth_n
            );
            return Assessment {
                verdict: Verdict::Hold,
                reason,
                scores,
            };
        }
        match evaluated
            .iter()
            .max_by(|a, b| a.accuracy_delta().total_cmp(&b.accuracy_delta()))
            .filter(|best| best.accuracy_delta() > 0.0)
        {
            Some(best) => Assessment {
                verdict: Verdict::Promote,
                reason: format!(
                    "candidate improves {} accuracy by {:.1} points ({} truth-joined samples), no model regresses",
                    best.kind.name(),
                    best.accuracy_delta() * 100.0,
                    best.truth_n
                ),
                scores,
            },
            None => Assessment {
                verdict: Verdict::Hold,
                reason: "candidate shows no accuracy improvement over live".into(),
                scores,
            },
        }
    }

    /// Publishes the scoreboard into the `cgc_lifecycle_*` gauge and
    /// counter families.
    pub fn sync(&self, metrics: &LifecycleMetrics) {
        for score in self.scores() {
            metrics.record_shadow_score(&score);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(score: &AbScore, kind: ModelKind, n: u64, live_ok: u64, cand_ok: u64) {
        // Disagreements are exactly the decisions where one side is
        // right and the other wrong; the rest agree.
        for i in 0..n {
            let truth = 1u16;
            let live = if i < live_ok { 1 } else { 0 };
            let cand = if i < cand_ok { 1 } else { 0 };
            score.observe(kind, live, cand, Some(truth));
        }
    }

    #[test]
    fn empty_scoreboard_holds() {
        let ab = AbScore::new();
        let a = ab.assess();
        assert_eq!(a.verdict, Verdict::Hold);
        assert!(a.reason.contains("insufficient evidence"), "{}", a.reason);
    }

    #[test]
    fn improving_candidate_promotes() {
        let ab = AbScore::new();
        feed(&ab, ModelKind::Pattern, 100, 60, 90);
        feed(&ab, ModelKind::Title, 100, 95, 95);
        let a = ab.assess();
        assert_eq!(a.verdict, Verdict::Promote, "{}", a.reason);
        assert!(a.reason.contains("pattern"), "{}", a.reason);
        let s = ab.score(ModelKind::Pattern);
        assert_eq!(s.mirrored, 100);
        assert!((s.accuracy_delta() - 0.30).abs() < 1e-9);
        assert!((s.agreement - 0.70).abs() < 1e-9);
    }

    #[test]
    fn regression_on_any_kind_blocks_promotion() {
        let ab = AbScore::new();
        feed(&ab, ModelKind::Pattern, 100, 60, 90);
        feed(&ab, ModelKind::Title, 100, 95, 80);
        let a = ab.assess();
        assert_eq!(a.verdict, Verdict::Hold);
        assert!(a.reason.contains("regresses title"), "{}", a.reason);
    }

    #[test]
    fn flat_candidate_holds() {
        let ab = AbScore::new();
        feed(&ab, ModelKind::Stage, 50, 40, 40);
        let a = ab.assess();
        assert_eq!(a.verdict, Verdict::Hold);
        assert!(a.reason.contains("no accuracy improvement"), "{}", a.reason);
    }

    #[test]
    fn thin_evidence_is_ignored_per_kind() {
        let ab = AbScore::new();
        // 10 samples of a catastrophic regression: below the evidence
        // floor, so it neither blocks nor promotes.
        feed(&ab, ModelKind::Title, 10, 10, 0);
        assert_eq!(ab.assess().verdict, Verdict::Hold);
        // A well-evidenced improvement elsewhere still promotes.
        feed(&ab, ModelKind::Pattern, 100, 60, 90);
        assert_eq!(ab.assess().verdict, Verdict::Promote);
    }
}
