//! End-to-end equivalence for the k-way merge ingestion path: one tap
//! feed split M ways across simulated capture points — including
//! deliberately skewed per-source clocks — and fused back by
//! `run_tap_feed_replay` must produce byte-identical session reports AND
//! byte-identical per-flow journal timelines to the offline batch path,
//! with zero merge-late records and zero drops under the blocking
//! backpressure policy. A second test checks the per-source merge
//! counter families render in the Prometheus exposition.

use gamescope::deploy::{
    build_tap_feed, run_tap_feed_replay, run_tap_fleet, TapFleetConfig, TapReplayOptions,
    TapReplayRun,
};
use gamescope::deploy::{train_bundle, TrainConfig};
use gamescope::ingest::{split_round_robin, BackpressurePolicy, MergeSource, ReplayConfig};
use gamescope::obs::journal::render_line;
use gamescope::trace::clock::VirtualClock;
use gamescope::trace::shift_micros;

fn fleet_config() -> TapFleetConfig {
    TapFleetConfig {
        n_sessions: 4,
        gameplay_secs: 12.0,
        shards: 2,
        ..TapFleetConfig::default()
    }
}

/// Rendered JSONL timeline lines, sorted — each flow's timeline is
/// produced by one shard worker in order, so the sorted per-flow lines
/// are the run's canonical journal output (cross-flow admission order in
/// the ring is racy by design).
fn timeline_lines(timelines: &[gamescope::obs::FlowTimeline]) -> Vec<String> {
    let mut lines: Vec<String> = timelines.iter().map(render_line).collect();
    lines.sort();
    lines
}

fn assert_matches_offline(offline: &gamescope::deploy::TapFleetRun, live: &TapReplayRun) {
    assert!(!live.replay.cancelled);
    assert_eq!(live.dropped, 0, "block policy must not drop");
    assert_eq!(live.enqueued, live.replay.released);
    assert_eq!(live.handed_off, live.enqueued);

    let render = |sessions: &[gamescope::pipeline::MonitoredSession]| -> Vec<String> {
        sessions
            .iter()
            .map(|s| format!("{s:?} {}", serde_json::to_string(&s.report).unwrap()))
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&offline.sessions), render(&live.fleet.sessions));
    assert_eq!(
        timeline_lines(&offline.timelines),
        timeline_lines(&live.fleet.timelines)
    );
}

#[test]
fn split_feeds_merge_back_byte_identical_to_offline_batch() {
    let bundle = std::sync::Arc::new(train_bundle(&TrainConfig::quick()));
    let cfg = fleet_config();
    let offline = run_tap_fleet(&bundle, &cfg);
    assert_eq!(offline.sessions.len(), cfg.n_sessions);
    let feed = build_tap_feed(&cfg);

    for m in [2usize, 4] {
        let sources: Vec<MergeSource> = split_round_robin(&feed, m)
            .into_iter()
            .enumerate()
            .map(|(i, part)| MergeSource::new(format!("tap{i}"), part))
            .collect();
        let live = run_tap_feed_replay(
            &bundle,
            cfg.shards,
            sources,
            VirtualClock::new().shared(),
            TapReplayOptions {
                replay: ReplayConfig { pace: 4.0 },
                ..TapReplayOptions::default()
            },
        );
        assert_eq!(live.merge.merged_total(), feed.len() as u64);
        assert_eq!(live.merge.late_total(), 0, "{m}-way split is never late");
        assert_matches_offline(&offline, &live);
    }

    // Same 3-way split, but squeezed through deliberately tiny queues
    // under the blocking policy: producers stall until the router frees
    // slots, and the merged run still loses nothing.
    let sources: Vec<MergeSource> = split_round_robin(&feed, 3)
        .into_iter()
        .enumerate()
        .map(|(i, part)| MergeSource::new(format!("tap{i}"), part))
        .collect();
    let mut tight = TapReplayOptions {
        replay: ReplayConfig::as_fast_as_possible(),
        ..TapReplayOptions::default()
    };
    tight.ingest.queue_capacity = 64;
    tight.ingest.policy = BackpressurePolicy::Block;
    let squeezed = run_tap_feed_replay(
        &bundle,
        cfg.shards,
        sources,
        VirtualClock::new().shared(),
        tight,
    );
    assert_eq!(squeezed.merge.late_total(), 0);
    assert_matches_offline(&offline, &squeezed);
}

#[test]
fn skewed_source_clocks_are_corrected_by_offsets() {
    let bundle = std::sync::Arc::new(train_bundle(&TrainConfig::quick()));
    let cfg = fleet_config();
    let offline = run_tap_fleet(&bundle, &cfg);
    let feed = build_tap_feed(&cfg);

    // Each simulated tap's capture clock runs ahead by a different skew;
    // its records carry the skewed timestamps and its MergeSource carries
    // the inverse correction, so the merge reconstructs the true axis.
    let skews: [i64; 3] = [0, 2_500, 7_000];
    let sources: Vec<MergeSource> = split_round_robin(&feed, skews.len())
        .into_iter()
        .zip(skews)
        .enumerate()
        .map(|(i, (part, skew))| {
            let skewed: Vec<_> = part
                .into_iter()
                .map(|(ts, tuple, len)| (shift_micros(ts, skew), tuple, len))
                .collect();
            MergeSource::with_offset(format!("tap{i}"), -skew, skewed)
        })
        .collect();
    let live = run_tap_feed_replay(
        &bundle,
        cfg.shards,
        sources,
        VirtualClock::new().shared(),
        TapReplayOptions::default(),
    );
    assert_eq!(live.merge.merged_total(), feed.len() as u64);
    assert_eq!(
        live.merge.late_total(),
        0,
        "corrected clocks are never late"
    );
    assert_matches_offline(&offline, &live);
}

#[test]
fn merge_metric_families_render_with_source_labels() {
    let bundle = std::sync::Arc::new(train_bundle(&TrainConfig::quick()));
    let cfg = fleet_config();
    let feed = build_tap_feed(&cfg);
    let sources: Vec<MergeSource> = split_round_robin(&feed, 2)
        .into_iter()
        .enumerate()
        .map(|(i, part)| MergeSource::new(format!("nic{i}"), part))
        .collect();
    let live = run_tap_feed_replay(
        &bundle,
        cfg.shards,
        sources,
        VirtualClock::new().shared(),
        TapReplayOptions {
            replay: ReplayConfig::as_fast_as_possible(),
            ..TapReplayOptions::default()
        },
    );

    let text = gamescope::obs::export::prometheus(&live.fleet.snapshot);
    assert!(
        text.contains("# TYPE cgc_ingest_merge_records_total counter"),
        "{text}"
    );
    let per_source = |i: usize| live.merge.merged[i];
    assert!(
        text.contains(&format!(
            "cgc_ingest_merge_records_total{{source=\"nic0\"}} {}",
            per_source(0)
        )),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "cgc_ingest_merge_records_total{{source=\"nic1\"}} {}",
            per_source(1)
        )),
        "{text}"
    );
    assert!(
        text.contains("cgc_ingest_merge_late_total{source=\"nic0\"} 0"),
        "{text}"
    );
    assert!(
        text.contains("cgc_ingest_merge_late_total{source=\"nic1\"} 0"),
        "{text}"
    );
    assert_eq!(per_source(0) + per_source(1), feed.len() as u64);

    // The adaptive router exported its chosen batch sizes alongside.
    assert!(
        text.contains("# TYPE cgc_ingest_batch_size histogram"),
        "{text}"
    );
    let hist = live
        .fleet
        .snapshot
        .histogram("cgc_ingest_batch_size")
        .expect("batch size histogram");
    assert_eq!(hist.sum, feed.len() as u64, "batch sizes sum to hand-offs");
}
