//! Golden-fixture tests pinning serialized-model → prediction outputs.
//!
//! Small trained models are committed under `tests/fixtures/` together
//! with their expected predictions. A model-format or traversal refactor
//! that silently changes any verdict — or any probability bit — fails
//! here. The flat layout is additionally checked against the same
//! expectations, so pointer and flat inference stay pinned to one truth.
//!
//! Regenerate (after an *intentional* model-format change) with:
//! `GOLDEN_REGEN=1 cargo test --test golden_forest` — then commit the
//! rewritten fixtures.

use mlcore::{Classifier, Dataset, DecisionTree, RandomForest, RandomForestConfig};
use serde::{Deserialize, Serialize};

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Deterministic three-class training data (no RNG: fixed trigonometric
/// lattice, so the fixture can be rebuilt from source alone).
fn training_data() -> Dataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..90 {
        let t = i as f64;
        let c = (i % 3) as usize;
        let (cx, cy) = [(0.0, 0.0), (6.0, 6.0), (0.0, 6.0)][c];
        x.push(vec![cx + (t * 0.7).sin() * 1.5, cy + (t * 1.3).cos() * 1.5]);
        y.push(c);
    }
    Dataset::new(x, y)
}

/// Probe inputs covering in-distribution points, the class boundaries,
/// out-of-range magnitudes, and non-finite features.
fn probes() -> Vec<Vec<f64>> {
    vec![
        vec![0.0, 0.0],
        vec![6.0, 6.0],
        vec![0.0, 6.0],
        vec![3.0, 3.0],
        vec![3.0, 6.0],
        vec![-50.0, 80.0],
        vec![1e9, -1e9],
        vec![f64::NAN, 0.0],
        vec![0.0, f64::NAN],
        vec![f64::INFINITY, f64::NEG_INFINITY],
    ]
}

#[derive(Serialize, Deserialize)]
struct Expectation {
    x: Vec<f64>,
    predict: usize,
    proba: Vec<f64>,
}

#[derive(Serialize, Deserialize)]
struct ForestFixture {
    forest: RandomForest,
    expected: Vec<Expectation>,
}

#[derive(Serialize, Deserialize)]
struct TreeFixture {
    tree: DecisionTree,
    expected: Vec<Expectation>,
}

fn regen() -> bool {
    std::env::var("GOLDEN_REGEN").is_ok_and(|v| v == "1")
}

fn load_or_regen<T: Serialize + Deserialize>(name: &str, build: impl FnOnce() -> T) -> T {
    let path = fixture_dir().join(name);
    if regen() {
        let value = build();
        std::fs::create_dir_all(fixture_dir()).expect("create fixture dir");
        let text = serde_json::to_string_pretty(&value).expect("fixture serializes");
        std::fs::write(&path, text).expect("write fixture");
        return value;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path:?} ({e}); run with GOLDEN_REGEN=1 to create it")
    });
    serde_json::from_str(&text).expect("fixture deserializes")
}

fn forest_fixture() -> ForestFixture {
    load_or_regen("forest_small.json", || {
        let forest = RandomForest::fit(
            &training_data(),
            &RandomForestConfig {
                n_trees: 7,
                max_depth: 6,
                seed: 2024,
                ..Default::default()
            },
        );
        let expected = probes()
            .into_iter()
            .map(|x| Expectation {
                predict: forest.predict(&x),
                proba: forest.predict_proba(&x),
                x,
            })
            .collect();
        ForestFixture { forest, expected }
    })
}

fn tree_fixture() -> TreeFixture {
    load_or_regen("tree_small.json", || {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let tree = DecisionTree::fit(
            &training_data(),
            &mlcore::tree::TreeConfig {
                max_depth: 5,
                ..Default::default()
            },
            &mut rng,
        );
        let expected = probes()
            .into_iter()
            .map(|x| Expectation {
                predict: tree.predict(&x),
                proba: tree.predict_proba(&x),
                x,
            })
            .collect();
        TreeFixture { tree, expected }
    })
}

/// f64-exact comparison that treats NaN == NaN (expected probabilities are
/// always finite, but be strict about silent NaN leaks anyway).
fn assert_bits_eq(a: &[f64], b: &[f64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: element {i}: {x} vs {y}");
    }
}

#[test]
fn forest_fixture_predictions_are_pinned() {
    let fx = forest_fixture();
    for e in &fx.expected {
        assert_eq!(fx.forest.predict(&e.x), e.predict, "predict on {:?}", e.x);
        assert_bits_eq(
            &fx.forest.predict_proba(&e.x),
            &e.proba,
            &format!("pointer proba on {:?}", e.x),
        );
    }
}

#[test]
fn flat_forest_matches_pinned_fixture_exactly() {
    let fx = forest_fixture();
    let flat = fx.forest.to_flat();
    for e in &fx.expected {
        assert_eq!(flat.predict(&e.x), e.predict, "flat predict on {:?}", e.x);
        assert_bits_eq(
            &flat.predict_proba(&e.x),
            &e.proba,
            &format!("flat proba on {:?}", e.x),
        );
    }
    // Batch path pins to the same expectations.
    let xs: Vec<Vec<f64>> = fx.expected.iter().map(|e| e.x.clone()).collect();
    let preds: Vec<usize> = fx.expected.iter().map(|e| e.predict).collect();
    assert_eq!(flat.predict_batch(&xs), preds);
}

#[test]
fn tree_fixture_predictions_are_pinned() {
    let fx = tree_fixture();
    for e in &fx.expected {
        assert_eq!(fx.tree.predict(&e.x), e.predict, "predict on {:?}", e.x);
        assert_bits_eq(
            &fx.tree.predict_proba(&e.x),
            &e.proba,
            &format!("tree proba on {:?}", e.x),
        );
    }
}

#[test]
fn fixture_survives_serde_roundtrip() {
    let fx = forest_fixture();
    let json = serde_json::to_string(&fx.forest).unwrap();
    let back: RandomForest = serde_json::from_str(&json).unwrap();
    for e in &fx.expected {
        assert_eq!(back.predict(&e.x), e.predict);
        assert_bits_eq(
            &back.predict_proba(&e.x),
            &e.proba,
            &format!("roundtrip proba on {:?}", e.x),
        );
    }
}
