//! End-to-end equivalence for the live ingestion path: the same tap
//! fleet driven through `run_tap_fleet_replay` — paced replay on a
//! virtual clock, bounded queues, off-thread router, graceful shutdown —
//! must produce byte-identical session reports AND byte-identical
//! per-flow journal timelines to the offline batch path
//! (`run_tap_fleet`), with zero records lost under the blocking
//! backpressure policy. A second test checks the labeled ingest metric
//! families render in the Prometheus exposition exactly as a scraper
//! would see them.

use gamescope::deploy::{
    run_tap_fleet, run_tap_fleet_replay, TapFleetConfig, TapReplayOptions, TapReplayRun,
};
use gamescope::deploy::{train_bundle, TrainConfig};
use gamescope::ingest::{BackpressurePolicy, ReplayConfig};
use gamescope::obs::journal::render_line;
use gamescope::trace::clock::VirtualClock;

fn fleet_config() -> TapFleetConfig {
    TapFleetConfig {
        n_sessions: 4,
        gameplay_secs: 12.0,
        shards: 2,
        ..TapFleetConfig::default()
    }
}

/// Rendered JSONL timeline lines, sorted. Cross-shard admission order in
/// the journal ring is racy (two router hand-offs interleave), but each
/// flow's own timeline is produced by one shard worker in order — so the
/// sorted per-flow lines are the run's canonical journal output.
fn timeline_lines(timelines: &[gamescope::obs::FlowTimeline]) -> Vec<String> {
    let mut lines: Vec<String> = timelines.iter().map(render_line).collect();
    lines.sort();
    lines
}

fn assert_matches_offline(offline: &gamescope::deploy::TapFleetRun, live: &TapReplayRun) {
    // Lossless transport: everything released by the pacer was admitted,
    // everything admitted was handed to the monitor, nothing dropped.
    assert!(!live.replay.cancelled);
    assert_eq!(live.dropped, 0, "block policy must not drop");
    assert_eq!(live.enqueued, live.replay.released);
    assert_eq!(live.handed_off, live.enqueued);

    // Byte-identical session reports: the full monitored-session record
    // via its Debug rendering (exact f64 formatting) and the report via
    // its JSON wire format.
    let render = |sessions: &[gamescope::pipeline::MonitoredSession]| -> Vec<String> {
        sessions
            .iter()
            .map(|s| format!("{s:?} {}", serde_json::to_string(&s.report).unwrap()))
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&offline.sessions), render(&live.fleet.sessions));

    // Byte-identical per-flow journal timelines.
    assert_eq!(
        timeline_lines(&offline.timelines),
        timeline_lines(&live.fleet.timelines)
    );
}

#[test]
fn replayed_fleet_is_byte_identical_to_offline_batch() {
    let bundle = std::sync::Arc::new(train_bundle(&TrainConfig::quick()));
    let cfg = fleet_config();
    let offline = run_tap_fleet(&bundle, &cfg);
    assert_eq!(offline.sessions.len(), cfg.n_sessions);

    // Paced 4x on a virtual clock: the pacer sleeps by advancing virtual
    // time, so the run is instant in wall time but exercises the full
    // deadline arithmetic.
    let clock = VirtualClock::new();
    let paced = run_tap_fleet_replay(
        &bundle,
        &cfg,
        clock.shared(),
        TapReplayOptions {
            replay: ReplayConfig { pace: 4.0 },
            ..TapReplayOptions::default()
        },
    );
    assert_matches_offline(&offline, &paced);

    // As-fast-as-possible replay (pace 0) through the same queues.
    let afap = run_tap_fleet_replay(
        &bundle,
        &cfg,
        VirtualClock::new().shared(),
        TapReplayOptions {
            replay: ReplayConfig::as_fast_as_possible(),
            ..TapReplayOptions::default()
        },
    );
    assert_matches_offline(&offline, &afap);

    // Deliberately tiny queues under the blocking policy: producers stall
    // until the router frees slots, and the run still loses nothing.
    let mut tight = TapReplayOptions {
        replay: ReplayConfig::as_fast_as_possible(),
        ..TapReplayOptions::default()
    };
    tight.ingest.queue_capacity = 64;
    tight.ingest.policy = BackpressurePolicy::Block;
    let squeezed = run_tap_fleet_replay(&bundle, &cfg, VirtualClock::new().shared(), tight);
    assert_matches_offline(&offline, &squeezed);
}

#[test]
fn ingest_metric_families_render_with_labels() {
    let bundle = std::sync::Arc::new(train_bundle(&TrainConfig::quick()));
    let cfg = fleet_config();
    // Paced on the virtual clock (instant in wall time): pacing is what
    // feeds the lag histogram — AFAP replay skips it by design.
    let live = run_tap_fleet_replay(
        &bundle,
        &cfg,
        VirtualClock::new().shared(),
        TapReplayOptions {
            replay: ReplayConfig { pace: 8.0 },
            ..TapReplayOptions::default()
        },
    );

    let text = gamescope::obs::export::prometheus(&live.fleet.snapshot);

    // Per-shard queue depth gauges, zero after the graceful drain.
    assert!(
        text.contains("# TYPE cgc_ingest_queue_depth gauge"),
        "{text}"
    );
    assert!(
        text.contains("cgc_ingest_queue_depth{shard=\"0\"} 0"),
        "{text}"
    );
    assert!(
        text.contains("cgc_ingest_queue_depth{shard=\"1\"} 0"),
        "{text}"
    );

    // Drop counters labeled by the policy that caused them.
    assert!(
        text.contains("# TYPE cgc_ingest_dropped_total counter"),
        "{text}"
    );
    assert!(
        text.contains("cgc_ingest_dropped_total{policy=\"drop_oldest\"} 0"),
        "{text}"
    );
    assert!(
        text.contains("cgc_ingest_dropped_total{policy=\"drop_newest\"} 0"),
        "{text}"
    );

    // Flow accounting reached the exporter.
    let released = live.replay.released;
    assert!(
        text.contains(&format!("cgc_ingest_enqueued_total {released}")),
        "{text}"
    );
    assert!(
        text.contains(&format!("cgc_ingest_handed_off_total {released}")),
        "{text}"
    );
    assert!(
        text.contains(&format!("cgc_ingest_replayed_total {released}")),
        "{text}"
    );

    // The pacing-lag histogram recorded one observation per record.
    assert!(
        text.contains("# TYPE cgc_ingest_pacing_lag_us histogram"),
        "{text}"
    );
    assert!(
        text.contains(&format!("cgc_ingest_pacing_lag_us_count {released}")),
        "{text}"
    );
}
