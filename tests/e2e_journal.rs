//! End-to-end flight-recorder consistency: sessions driven through the
//! full tap pipeline must leave per-flow journal timelines that agree
//! with the pipeline's own returned reports — admission first, one title
//! decision matching the report, stage/QoE transitions exactly where the
//! per-slot lists change, one verdict matching the session-level call,
//! closure last. A second test stands up the live HTTP endpoint the way
//! `gamescope fleet --serve` does and scrapes all three routes.

use gamescope::deploy::fleet::{run_fleet, FleetConfig};
use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::domain::{GameTitle, StreamSettings};
use gamescope::obs::event::{CloseCause, EventKind};
use gamescope::obs::{Journal, JournalConfig, Registry};
use gamescope::pipeline::monitor::{MonitorConfig, TapMonitor};
use gamescope::sim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
use gamescope::trace::packet::Direction;

fn make_session(title: GameTitle, seed: u64) -> Session {
    SessionGenerator::new().generate(&SessionConfig {
        kind: TitleKind::Known(title),
        settings: StreamSettings::default_pc(),
        gameplay_secs: 45.0,
        fidelity: Fidelity::FullPackets,
        seed,
    })
}

/// Consecutive-deduplicated copy of a slot list: the sequence of values a
/// transition-triggered event stream should have emitted.
fn transitions<T: PartialEq + Copy>(slots: &[T]) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    for &s in slots {
        if out.last() != Some(&s) {
            out.push(s);
        }
    }
    out
}

#[test]
fn journal_timelines_agree_with_session_reports() {
    let bundle = train_bundle(&TrainConfig::quick());
    let sessions = [
        make_session(GameTitle::Fortnite, 41),
        make_session(GameTitle::Hearthstone, 42),
    ];

    // Private registry + journal so the assertions are exact even when
    // other tests drive the pipeline concurrently in this process.
    let registry = Registry::new();
    let (sink, mut journal) = Journal::new(JournalConfig::default(), &registry);
    let mut monitor = TapMonitor::with_registry(&bundle, MonitorConfig::default(), &registry);
    monitor.set_journal(sink.clone());

    for (i, s) in sessions.iter().enumerate() {
        let offset = i as u64 * 3_000_000;
        for p in &s.packets {
            let tuple = match p.dir {
                Direction::Downstream => s.tuple,
                Direction::Upstream => s.tuple.reversed(),
            };
            monitor.ingest(p.ts + offset, &tuple, p.payload_len);
        }
    }
    let reports = monitor.finish_all();
    assert_eq!(reports.len(), sessions.len());

    journal.drain();
    assert_eq!(journal.timelines().len(), reports.len());

    // Nothing overflowed the ring: the recorder's completeness claim.
    assert_eq!(gamescope::obs::journal::dropped_events(&sink), 0);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("cgc_journal_dropped_events_total"), Some(0));
    let total_events: u64 = journal
        .timelines()
        .iter()
        .map(|tl| tl.events.len() as u64)
        .sum();
    assert_eq!(snap.counter("cgc_journal_events_total"), Some(total_events));

    for m in &reports {
        let flow = m.tuple.flow_id();
        let tl = journal
            .timeline(flow)
            .unwrap_or_else(|| panic!("no timeline for flow {flow:016x} ({})", m.tuple));
        assert!(!tl.truncated, "timeline truncated for {}", m.tuple);
        assert_eq!(tl.platform, Some(m.platform));
        let events = &tl.events;

        // Lifecycle brackets: admission (with the platform the monitor
        // detected) opens the timeline; the drain-close ends it, preceded
        // by the session verdict.
        assert!(
            matches!(
                events.first().map(|e| &e.kind),
                Some(EventKind::FlowAdmitted { platform, .. }) if *platform == m.platform
            ),
            "first event must be admission: {:?}",
            events.first()
        );
        let last = events.last().expect("non-empty timeline");
        match last.kind {
            EventKind::FlowClosed { cause, confirmed } => {
                assert_eq!(cause, CloseCause::Drained);
                assert_eq!(confirmed, m.confirmed);
                assert_eq!(last.ts, m.last_seen);
            }
            ref k => panic!("last event must be closure, got {k:?}"),
        }
        match events[events.len() - 2].kind {
            EventKind::SessionVerdict {
                objective,
                effective,
            } => {
                assert_eq!(objective, m.report.objective_qoe);
                assert_eq!(effective, m.report.effective_qoe);
            }
            ref k => panic!("verdict must precede closure, got {k:?}"),
        }

        // Exactly one title decision, and it is the report's.
        let decisions: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::TitleDecided { title, confidence } => Some((title, confidence)),
                _ => None,
            })
            .collect();
        assert_eq!(decisions.len(), 1, "one title decision per session");
        assert_eq!(decisions[0].0, m.report.title.title);
        assert!((decisions[0].1 - m.report.title.confidence).abs() < 1e-9);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::LaunchWindowClosed { .. }))
                .count(),
            1
        );

        // Stage transitions: the StageEntered sequence is exactly the
        // consecutive-deduplicated per-slot stage list from the report.
        let entered: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::StageEntered { stage, .. } => Some(stage),
                _ => None,
            })
            .collect();
        assert_eq!(entered, transitions(&m.report.stage_slots));

        // Same for the (objective, effective) QoE pairs.
        let shifts: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::QoeShift {
                    objective,
                    effective,
                    ..
                } => Some((objective, effective)),
                _ => None,
            })
            .collect();
        assert_eq!(shifts, transitions(&m.report.qoe_slots));

        // Pattern decision mirrors the report: one event iff it fired.
        let patterns: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::PatternInferred { pattern, .. } => Some(pattern),
                _ => None,
            })
            .collect();
        match &m.report.pattern {
            Some(p) => assert_eq!(patterns, vec![p.pattern]),
            None => assert!(patterns.is_empty()),
        }
    }
}

/// Minimal HTTP GET against the in-process telemetry server.
fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: e2e\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (head.to_string(), body.to_string())
}

#[test]
fn telemetry_endpoint_serves_fleet_run() {
    // The same wiring `gamescope fleet --serve 127.0.0.1:0` performs:
    // install the process-wide journal, run a fleet, serve the global
    // registry and journal over HTTP.
    let journal = gamescope::obs::journal::install_global(JournalConfig::default());
    let bundle = train_bundle(&TrainConfig::quick());
    let cfg = FleetConfig {
        n_sessions: 4,
        duration_scale: 0.02,
        ..FleetConfig::default()
    };
    let records = run_fleet(&bundle, &cfg);
    assert_eq!(records.len(), cfg.n_sessions);

    let server = gamescope::obs::TelemetryServer::spawn(
        "127.0.0.1:0",
        || Registry::global().snapshot(),
        Some(journal),
    )
    .unwrap();
    let addr = server.local_addr();

    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains("# TYPE"), "{body}");
    assert!(body.contains("cgc_journal_events_total"), "{body}");

    // One JSONL timeline per fleet session, each carrying a verdict.
    let (head, body) = http_get(addr, "/journal");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), cfg.n_sessions, "{body}");
    for line in &lines {
        assert!(line.starts_with('{'), "{line}");
        assert!(line.contains("\"session_verdict\""), "{line}");
    }

    // Narrowing by flow id returns exactly that timeline.
    let flow_hex = lines[0]
        .split("\"flow\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("flow field in timeline JSON");
    let (_, one) = http_get(addr, &format!("/journal?flow={flow_hex}"));
    assert_eq!(one.lines().count(), 1);
    assert!(one.contains(flow_hex), "{one}");

    let (_, tail) = http_get(addr, "/journal?tail=3");
    assert_eq!(tail.lines().count(), 3, "{tail}");

    let (head, _) = http_get(addr, "/nowhere");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
}
