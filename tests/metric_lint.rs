//! Metric-name lint: every family the production code registers must
//! follow the naming contract, and no two call sites may register the
//! same family name with different label-key sets (Prometheus clients
//! reject that, and the registry would happily serve both).
//!
//! The contract, as a regex: `^cgc_[a-z0-9_]+(_total|_us|_bytes|_depth|_size)?$`
//! — a `cgc_` prefix and lowercase snake_case throughout (the unit
//! suffix, when present, is part of the same alphabet). The lint is
//! dynamic: it drives every registering subsystem against live
//! registries and checks what actually got registered, so a family added
//! anywhere in the workspace is linted the moment any test path
//! exercises it.

use std::collections::BTreeMap;

use gamescope::deploy::fleet::{run_tap_fleet_replay, TapFleetConfig, TapReplayOptions};
use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::obs::{self, Registry};

/// The naming contract. `^cgc_[a-z0-9_]+(_total|_us|_bytes|_depth|_size)?$`
/// reduces to "cgc_ prefix, lowercase snake_case alphabet" (the suffix
/// group draws from the same alphabet); the lint additionally rejects
/// the degenerate spellings the regex technically admits (empty tail,
/// doubled or trailing underscores).
fn name_is_clean(name: &str) -> bool {
    let Some(tail) = name.strip_prefix("cgc_") else {
        return false;
    };
    !tail.is_empty()
        && !tail.ends_with('_')
        && !tail.contains("__")
        && tail
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Folds a snapshot into `families`: family name -> sorted label-key set
/// -> one example label rendering (for the failure message).
fn collect(
    snap: &obs::Snapshot,
    origin: &str,
    families: &mut BTreeMap<String, BTreeMap<Vec<String>, String>>,
) {
    for m in &snap.metrics {
        let mut keys: Vec<String> = m.labels.iter().map(|(k, _)| k.clone()).collect();
        keys.sort();
        families
            .entry(m.name.clone())
            .or_default()
            .entry(keys)
            .or_insert_with(|| format!("{origin}: {:?}", m.labels));
    }
}

#[test]
fn every_registered_family_is_lint_clean() {
    // One live replay with every observability layer attached registers
    // the monitor, shard, pipeline, qoe, ingest, merge, journal and trace
    // families on the run's private registry in a single pass.
    let bundle = std::sync::Arc::new(train_bundle(&TrainConfig::quick()));
    let run = run_tap_fleet_replay(
        &bundle,
        &TapFleetConfig {
            n_sessions: 2,
            gameplay_secs: 8.0,
            shards: 2,
            ..Default::default()
        },
        gamescope::trace::VirtualClock::new().shared(),
        TapReplayOptions {
            trace: Some(obs::TraceConfig::default()),
            ..Default::default()
        },
    );

    // The families the replay does not touch: the nettrace parse-layer
    // set and the off-thread pump counters.
    let extra = Registry::new();
    gamescope::trace::metrics::TraceMetrics::register(&extra);
    let (_sink, journal) = obs::Journal::new(obs::JournalConfig::default(), &extra);
    obs::JournalPump::start(
        std::sync::Arc::new(std::sync::Mutex::new(journal)),
        std::time::Duration::from_millis(50),
        &extra,
    )
    .stop();
    let (_tsink, collector) = obs::TraceCollector::new(obs::TraceConfig::default(), &extra);
    obs::TracePump::start(
        std::sync::Arc::new(std::sync::Mutex::new(collector)),
        std::time::Duration::from_millis(50),
        &extra,
    )
    .stop();
    // The classification-quality observatory: constructing the hub, the
    // drift engine and the build-info gauges pre-registers every
    // cgc_quality_*, cgc_drift_* and cgc_build_* / uptime family.
    let _ = obs::QualityHub::new(obs::QualityConfig::default(), &extra);
    let _ = obs::DriftEngine::new(obs::DriftConfig::default(), &extra);
    let _ = obs::BuildInfo::register(&extra);
    // The model-lifecycle families: cgc_model_version and every
    // cgc_lifecycle_* gauge/counter the pilot narrates swaps through.
    let _ = gamescope::lifecycle::LifecycleMetrics::register(&extra);

    let mut families: BTreeMap<String, BTreeMap<Vec<String>, String>> = BTreeMap::new();
    collect(&run.fleet.snapshot, "replay registry", &mut families);
    collect(&extra.snapshot(), "extra registry", &mut families);
    // Whatever reached the process-global registry along the way (the
    // nettrace layer registers there from inside per-flow stats).
    collect(
        &Registry::global().snapshot(),
        "global registry",
        &mut families,
    );

    assert!(
        families.len() > 30,
        "lint saw only {} families — a registering subsystem went quiet",
        families.len()
    );

    let mut violations: Vec<String> = Vec::new();
    for (name, label_sets) in &families {
        if !name_is_clean(name) {
            violations.push(format!(
                "{name}: does not match ^cgc_[a-z0-9_]+(_total|_us|_bytes|_depth|_size)?$"
            ));
        }
        if label_sets.len() > 1 {
            let sets: Vec<String> = label_sets
                .iter()
                .map(|(keys, example)| format!("{keys:?} ({example})"))
                .collect();
            violations.push(format!(
                "{name}: registered with {} different label-key sets: {}",
                label_sets.len(),
                sets.join(" vs ")
            ));
        }
    }
    assert!(
        violations.is_empty(),
        "metric lint violations:\n  {}",
        violations.join("\n  ")
    );
}
