//! End-to-end span-trace acceptance: a live tap replay served over the
//! telemetry endpoint must let an operator reconstruct one flow's full
//! causal chain (ingest → merge → queue → router → shard → slot →
//! classifier → verdict) from `/trace`, cross-match it against the
//! decision journal's timeline for the same flow id, and follow a
//! histogram exemplar from `/metrics` back to that trace. A second test
//! drives `/healthz` through the SLO burn-rate engine on a manual clock:
//! an induced drop burst flips it to degraded (and a sustained storm to
//! critical 503), and it recovers once the fast burn window drains.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gamescope::deploy::fleet::{build_tap_feed, TapFleetConfig};
use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::ingest::{
    merge_sources, IngestEngine, MergeConfig, MergeSource, MonitorSink, ReplayConfig,
};
use gamescope::obs::snapshot::MetricValue;
use gamescope::obs::{
    Journal, JournalConfig, Registry, ServeOptions, SloConfig, SloHub, TelemetryServer,
    TraceCollector, TraceConfig, TraceStage,
};
use gamescope::pipeline::{ShardedMonitorConfig, ShardedTapMonitor};

/// Minimal HTTP GET against the in-process telemetry server.
fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: e2e\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (head.to_string(), body.to_string())
}

/// Every string value keyed by `key` in one JSONL line, in order.
fn field_strings(line: &str, key: &str) -> Vec<String> {
    let pat = format!("\"{key}\":\"");
    line.match_indices(&pat)
        .filter_map(|(i, _)| line[i + pat.len()..].split('"').next())
        .map(str::to_string)
        .collect()
}

/// Every unsigned-integer value keyed by `key` in one JSONL line.
fn field_uints(line: &str, key: &str) -> Vec<u64> {
    let pat = format!("\"{key}\":");
    line.match_indices(&pat)
        .filter_map(|(i, _)| {
            let digits: String = line[i + pat.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .collect()
}

/// One span parsed back out of the served JSONL: (stage, ts, slot).
type ParsedSpan = (String, u64, u64);

/// Parses a `/trace` timeline line and re-sorts its spans into causal
/// order the way an operator (or `TraceTimeline::causal_chain`) would:
/// stage rank, then timestamp, then slot.
fn parse_chain(line: &str) -> Vec<ParsedSpan> {
    let stages = field_strings(line, "stage");
    let ts = field_uints(line, "ts");
    let slots = field_uints(line, "slot");
    assert_eq!(stages.len(), ts.len(), "span fields line up: {line}");
    assert_eq!(stages.len(), slots.len(), "span fields line up: {line}");
    let rank = |name: &str| {
        TraceStage::ALL
            .iter()
            .position(|s| s.name() == name)
            .unwrap_or_else(|| panic!("unknown stage {name:?} in {line}"))
    };
    let mut chain: Vec<ParsedSpan> = stages
        .into_iter()
        .zip(ts)
        .zip(slots)
        .map(|((stage, ts), slot)| (stage, ts, slot))
        .collect();
    chain.sort_by_key(|(stage, ts, slot)| (rank(stage), *ts, *slot));
    chain
}

#[test]
fn trace_endpoint_reconstructs_causal_chains_with_exemplars() {
    let bundle = Arc::new(train_bundle(&TrainConfig::quick()));
    let cfg = TapFleetConfig {
        n_sessions: 2,
        gameplay_secs: 12.0,
        shards: 2,
        ..Default::default()
    };
    let feed = build_tap_feed(&cfg);

    // The `run_tap_feed_replay` wiring, inlined so the registry, journal
    // and span collector stay alive for the server after the run ends.
    let registry = Arc::new(Registry::new());
    let (trace_sink, collector) = TraceCollector::new(
        TraceConfig {
            // Per-record stages hold spans in the ring until the
            // post-run `/trace` drain; size for the whole replay.
            ring_capacity: 1 << 20,
            max_spans_per_flow: 1 << 17,
            ..Default::default()
        },
        &registry,
    );
    let (merged, _merge_stats) = merge_sources(
        vec![MergeSource::new("feed", feed)],
        &MergeConfig::default(),
        Some(&registry),
    );
    for &(ts, tuple, _) in &merged {
        trace_sink.record(tuple.flow_id(), 0, TraceStage::Merge, ts, 0);
    }
    let (journal_sink, journal) = Journal::new(JournalConfig::default(), &registry);
    let monitor = ShardedTapMonitor::with_observability(
        Arc::clone(&bundle),
        ShardedMonitorConfig::with_shards(cfg.shards),
        &registry,
        journal_sink,
        trace_sink.clone(),
    );
    let clock = gamescope::trace::VirtualClock::new().shared();
    let ingest_cfg = gamescope::ingest::IngestConfig {
        clock: Some(Arc::clone(&clock)),
        trace: trace_sink.clone(),
        ..Default::default()
    };
    let engine = IngestEngine::start(MonitorSink::new(monitor), ingest_cfg, &registry);
    let producer = engine.producer();
    let metrics = engine.metrics().clone();
    gamescope::ingest::replay(
        &merged,
        &*clock,
        &ReplayConfig::default(),
        Some(&metrics),
        None,
        |record| {
            trace_sink.record(record.1.flow_id(), 0, TraceStage::Ingest, record.0, 0);
            producer.push_record(record);
        },
    );
    drop(producer);
    let run = engine.shutdown();
    let (mut sessions, _stats) = run.output;
    sessions.sort_by_key(|m| m.started_at);
    assert_eq!(sessions.len(), cfg.n_sessions);

    // Serve the finished run the way `gamescope fleet --serve` does.
    let reg = Arc::clone(&registry);
    let server = TelemetryServer::spawn_with(
        "127.0.0.1:0",
        move || reg.snapshot(),
        ServeOptions {
            journal: Some(Arc::new(Mutex::new(journal))),
            trace: Some(Arc::new(Mutex::new(collector))),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // One JSONL timeline per sampled flow, and nothing overflowed the
    // ring on the way there.
    let (head, body) = http_get(addr, "/trace");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body.lines().count(), cfg.n_sessions, "{body}");
    assert_eq!(
        registry.snapshot().counter("cgc_trace_dropped_spans_total"),
        Some(0)
    );

    let all_stage_names: Vec<&str> = TraceStage::ALL.iter().map(|s| s.name()).collect();
    for m in &sessions {
        let flow_hex = format!("{:016x}", m.tuple.flow_id());

        // `?flow=` narrows to exactly this flow's timeline.
        let (_, line) = http_get(addr, &format!("/trace?flow={flow_hex}"));
        assert_eq!(line.lines().count(), 1, "{line}");
        assert!(line.contains(&format!("\"flow\":\"{flow_hex}\"")), "{line}");
        assert!(line.contains("\"truncated\":false"), "{line}");

        // The reconstructed chain covers every stage, ingest first and
        // verdict last.
        let chain = parse_chain(&line);
        let distinct: Vec<&str> = all_stage_names
            .iter()
            .copied()
            .filter(|name| chain.iter().any(|(stage, _, _)| stage == name))
            .collect();
        assert_eq!(distinct, all_stage_names, "full causal chain: {line}");
        let (first_stage, _, _) = chain.first().unwrap();
        let (last_stage, verdict_ts, verdict_slot) = chain.last().unwrap();
        assert_eq!(first_stage, "ingest");
        assert_eq!(last_stage, "verdict");

        // Cross-match against the decision journal: the same flow id has
        // a timeline, and the verdict span lands on the exact timestamp
        // of one of its decision events (the session verdict).
        let (_, journal_line) = http_get(addr, &format!("/journal?flow={flow_hex}"));
        assert_eq!(journal_line.lines().count(), 1, "{journal_line}");
        assert!(
            journal_line.contains(&format!("\"flow\":\"{flow_hex}\"")),
            "{journal_line}"
        );
        assert!(
            field_uints(&journal_line, "ts").contains(verdict_ts),
            "verdict span ts {verdict_ts} missing from journal timeline: {journal_line}"
        );

        // `?slot=` narrows to the verdict slot's spans.
        let (_, slot_line) = http_get(addr, &format!("/trace?flow={flow_hex}&slot={verdict_slot}"));
        assert!(slot_line.contains("\"stage\":\"verdict\""), "{slot_line}");
        assert!(!slot_line.contains("\"stage\":\"ingest\""), "{slot_line}");
    }

    // A latency histogram exemplar resolves back to a served trace: the
    // exemplar names a flow the run classified, and its trace id is the
    // id of a span in that flow's `/trace` timeline.
    let snap = registry.snapshot();
    let exemplar = snap
        .metrics
        .iter()
        .filter(|m| m.name == "cgc_pipeline_feature_ns")
        .filter_map(|m| match &m.value {
            MetricValue::Histogram(h) => h.exemplar,
            _ => None,
        })
        .next()
        .expect("a sampled classified slot attached an exemplar");
    assert!(
        sessions.iter().any(|m| m.tuple.flow_id() == exemplar.flow),
        "exemplar flow {:016x} is not a session flow",
        exemplar.flow
    );
    let ex_flow_hex = format!("{:016x}", exemplar.flow);
    let ex_trace_hex = format!("{:016x}", exemplar.trace);
    let (_, line) = http_get(addr, &format!("/trace?flow={ex_flow_hex}"));
    assert!(
        line.contains(&format!("\"trace\":\"{ex_trace_hex}\"")),
        "exemplar trace {ex_trace_hex} does not resolve in {line}"
    );
    // And the scraped exposition carries the OpenMetrics exemplar an
    // operator would have jumped from.
    let (_, metrics_body) = http_get(addr, "/metrics");
    assert!(
        metrics_body.contains(&format!("flow=\"{ex_flow_hex}\",trace=\"{ex_trace_hex}\"")),
        "exemplar missing from /metrics exposition"
    );
}

#[test]
fn healthz_degrades_on_drop_burst_and_recovers_when_burn_window_drains() {
    // Manual SLO clock: each step below sets the hub's "now" before the
    // probe, so the burn-window arithmetic is exact.
    let registry = Arc::new(Registry::new());
    let accepted = registry.counter("cgc_ingest_enqueued_total", "accepted");
    let dropped = registry.counter("cgc_ingest_dropped_total", "dropped");
    let now = Arc::new(AtomicU64::new(1_000_000));
    let now_for_hub = Arc::clone(&now);
    let hub = SloHub::new(SloConfig::default(), move || {
        now_for_hub.load(Ordering::Relaxed)
    });
    let reg = Arc::clone(&registry);
    let server = TelemetryServer::spawn_with(
        "127.0.0.1:0",
        move || reg.snapshot(),
        ServeOptions {
            slo: Some(Arc::new(hub)),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // t = 1 s: baseline probe primes the snapshot bridge.
    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    // t = 31 s: a drop burst (30 % of the interval's records) burns the
    // 5-minute window at 3x — degraded, but the hour window is intact,
    // so the probe still answers 200.
    accepted.add(700);
    dropped.add(300);
    now.store(31_000_000, Ordering::Relaxed);
    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.starts_with("degraded: drop_ratio"), "{body}");
    let (head, slo) = http_get(addr, "/slo");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(slo.contains("\"status\":\"degraded\""), "{slo}");
    assert!(slo.contains("\"objective\":\"drop_ratio\""), "{slo}");

    // t = 332 s: the burst has slid out of the fast window and no new
    // drops arrived — recovered.
    now.store(332_000_000, Ordering::Relaxed);
    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    // t = 932 s: a sustained storm (100 % drops for ten minutes) burns
    // both windows — critical, and the probe flips to 503 so external
    // checks trip unmodified.
    dropped.add(5_000);
    now.store(932_000_000, Ordering::Relaxed);
    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 503"), "{head}");
    assert!(body.starts_with("critical: drop_ratio"), "{body}");

    // t = 1233 s: storm over, fast window drained — recovered again.
    now.store(1_233_000_000, Ordering::Relaxed);
    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");
}
