//! End-to-end proof of the classification-quality observatory: a
//! stationary fleet replay must leave the drift engine quiet and the
//! streaming confusion gauges healthy, and a mid-deployment shift —
//! catalog churn (out-of-catalog titles flooding in) plus a network
//! impairment ramp — must trip the label-free drift alarm within one
//! fleet batch while the truth-joined accuracy gauges drop for the
//! affected classifier. Everything is asserted over live HTTP against
//! the telemetry server's `/quality`, `/drift` and `/healthz` routes,
//! exactly as an operator's scraper would see it.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gamescope::deploy::fleet::{run_fleet, FleetConfig};
use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::obs::{self, Registry};

fn get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (head.to_string(), body.to_string())
}

/// Extracts the raw JSON value of `key` inside the per-model object for
/// `model` (the reports serialize each model's scalars before any nested
/// array, so scanning forward from the `"model":"<name>"` anchor is
/// unambiguous).
fn model_field(body: &str, model: &str, key: &str) -> String {
    let anchor = format!("\"model\":\"{model}\"");
    let start = body
        .find(&anchor)
        .unwrap_or_else(|| panic!("no {model:?} object in {body}"));
    let rest = &body[start..];
    let pat = format!("\"{key}\":");
    let at = rest
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key:?} after {anchor} in {body}"));
    let val = &rest[at + pat.len()..];
    let end = val
        .find([',', '}', ']'])
        .unwrap_or_else(|| panic!("unterminated {key:?} value"));
    val[..end].trim().to_string()
}

fn model_f64(body: &str, model: &str, key: &str) -> f64 {
    model_field(body, model, key)
        .parse()
        .unwrap_or_else(|e| panic!("{model}.{key}: {e:?}"))
}

#[test]
fn drift_alarm_and_accuracy_drop_surface_over_http() {
    // Window sizing: the title model scores once per session (so these
    // are session counts — the stationary phase freezes the reference at
    // 256 sessions and the shifted phase must fill a 128-session window)
    // while the stage model scores once per slot; the default
    // `stage_scale` widens stage's windows so they span a comparable
    // number of sessions. The rings are sized for a whole phase because
    // this test only drains at scrape time; a live deployment drains on
    // every scrape.
    let drift_cfg = obs::DriftConfig {
        ring_capacity: 1 << 18,
        reference_size: 256,
        window: 128,
        min_window: 32,
        ..Default::default()
    };
    let alarm_threshold = drift_cfg.alarm_threshold;
    obs::quality::install_global(obs::QualityConfig {
        ring_capacity: 1 << 18,
        // Short rolling window so phase B's accuracy reflects phase B,
        // not a blend with the stationary phase.
        window: 64,
        ..obs::QualityConfig::default()
    });
    obs::drift::install_global(drift_cfg);

    // Burn-rate health on a manual clock, advanced between scrapes so
    // the fast window fills without wall-clock sleeps.
    let clock = Arc::new(AtomicU64::new(0));
    let slo = {
        let clock = Arc::clone(&clock);
        Arc::new(obs::SloHub::new(obs::SloConfig::default(), move || {
            clock.load(Ordering::Relaxed)
        }))
    };
    let server = obs::TelemetryServer::spawn_with(
        "127.0.0.1:0",
        || Registry::global().snapshot(),
        obs::ServeOptions {
            journal: None,
            trace: None,
            slo: Some(Arc::clone(&slo)),
            quality: obs::quality::global().map(|(_, hub)| Arc::clone(hub)),
            drift: obs::drift::global().map(|(_, engine)| Arc::clone(engine)),
            build: Some(Arc::new(obs::BuildInfo::register(Registry::global()))),
            models: None,
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let bundle = train_bundle(&TrainConfig::quick());

    // --- Phase A: stationary deployment --------------------------------
    // Catalog titles only, clean network paths: the drift engine builds
    // and freezes its reference here, and the truth joins fill the
    // confusion windows with in-distribution pairs.
    let stationary = run_fleet(
        &bundle,
        &FleetConfig {
            n_sessions: 420,
            duration_scale: 0.05,
            unknown_fraction: 0.0,
            impaired_fraction: 0.0,
            workers: 1, // deterministic observation order
            ..Default::default()
        },
    );
    assert_eq!(stationary.len(), 420);

    clock.store(60_000_000, Ordering::Relaxed);
    let (_, healthz_a) = get(addr, "/healthz");
    clock.store(180_000_000, Ordering::Relaxed);
    let (_, healthz_a2) = get(addr, "/healthz");
    let (_, quality_a) = get(addr, "/quality");
    let (_, drift_a) = get(addr, "/drift");
    eprintln!("phase A /quality: {quality_a}");
    eprintln!("phase A /drift:   {drift_a}");
    eprintln!("phase A /healthz: {healthz_a2}");

    // The reference froze and the stationary window sits under the alarm
    // threshold for every model.
    assert_eq!(model_field(&drift_a, "title", "reference_frozen"), "true");
    let title_score_a = model_f64(&drift_a, "title", "score");
    let stage_score_a = model_f64(&drift_a, "stage", "score");
    assert!(
        title_score_a < alarm_threshold && stage_score_a < alarm_threshold,
        "stationary replay must not alarm (title {title_score_a}, stage {stage_score_a})"
    );
    assert!(!drift_a.contains("\"alarm\":true"), "phase A: {drift_a}");
    // Truth-joined accuracy on the stationary window is healthy.
    let title_acc_a = model_f64(&quality_a, "title", "accuracy");
    let stage_acc_a = model_f64(&quality_a, "stage", "accuracy");
    assert!(
        title_acc_a > 0.75,
        "stationary title accuracy {title_acc_a}"
    );
    assert!(stage_acc_a > 0.5, "stationary stage accuracy {stage_acc_a}");
    // Build info rides on /healthz, and no drift objective is burning.
    assert!(healthz_a.contains("build "), "healthz: {healthz_a}");
    assert!(
        !healthz_a2.contains("drift_score"),
        "stationary healthz must not burn the drift objective: {healthz_a2}"
    );

    // --- Phase B: catalog churn + impairment ramp ----------------------
    // Every session is now either an out-of-catalog launch (the paper's
    // unknown-title case: low-confidence launch windows) or rides an
    // impaired path. One fleet batch bounds how many slots the detector
    // gets to see the shift.
    let shifted = run_fleet(
        &bundle,
        &FleetConfig {
            n_sessions: 160,
            seed: 20250301,
            duration_scale: 0.05,
            unknown_fraction: 0.7,
            impaired_fraction: 1.0,
            workers: 1,
            ..Default::default()
        },
    );
    assert_eq!(shifted.len(), 160);

    clock.store(240_000_000, Ordering::Relaxed);
    let (_, _warm) = get(addr, "/healthz");
    clock.store(360_000_000, Ordering::Relaxed);
    let (_, healthz_b) = get(addr, "/healthz");
    let (_, quality_b) = get(addr, "/quality");
    let (_, drift_b) = get(addr, "/drift");
    let (_, metrics_b) = get(addr, "/metrics");
    eprintln!("phase B /quality: {quality_b}");
    eprintln!("phase B /drift:   {drift_b}");
    eprintln!("phase B /healthz: {healthz_b}");

    // The label-free detector tripped on the title model within one
    // batch: out-of-catalog launches collapse the confidence
    // distribution (PSI) and the novelty share of low-confidence launch
    // windows explodes past its reference.
    let title_score_b = model_f64(&drift_b, "title", "score");
    assert!(
        title_score_b >= alarm_threshold,
        "title drift score {title_score_b} must cross {alarm_threshold}"
    );
    assert_eq!(model_field(&drift_b, "title", "alarm"), "true");
    let novelty_b = model_f64(&drift_b, "title", "novelty");
    assert!(novelty_b > 0.3, "novelty share {novelty_b}");

    // The truth joins tell the complementary story, and it lands on
    // exactly the affected classifier. Catalog churn does NOT dent title
    // accuracy — out-of-catalog launches are correctly gated to unknown,
    // so the confusion matrix stays clean and only the label-free
    // signals above can see that shift. The impairment ramp, by
    // contrast, corrupts the activity evidence the pattern classifier
    // reads, and its truth-joined accuracy drops.
    let title_acc_b = model_f64(&quality_b, "title", "accuracy");
    let pattern_acc_a = model_f64(&quality_a, "pattern", "accuracy");
    let pattern_acc_b = model_f64(&quality_b, "pattern", "accuracy");
    eprintln!("title accuracy: {title_acc_a} -> {title_acc_b}");
    eprintln!("pattern accuracy: {pattern_acc_a} -> {pattern_acc_b}");
    assert!(
        pattern_acc_b < pattern_acc_a - 0.05,
        "pattern accuracy must drop under impairment: {pattern_acc_a} -> {pattern_acc_b}"
    );
    assert!(
        title_acc_b > title_acc_a - 0.05,
        "title accuracy must hold (unknowns gate correctly): {title_acc_a} -> {title_acc_b}"
    );

    // The same numbers are scraped as gauges on /metrics.
    let acc_pct = (title_acc_b * 100.0).round() as i64;
    assert!(
        metrics_b.contains(&format!(
            "cgc_quality_accuracy_pct{{model=\"title\"}} {acc_pct}"
        )),
        "metrics must carry the accuracy gauge ({acc_pct}): {metrics_b}"
    );
    assert!(metrics_b.contains("cgc_drift_score_milli{model=\"title\"}"));

    // And the health rollup burns the drift objective: the /healthz
    // scrape two minutes after the shift names drift_score in its
    // degraded reasons.
    assert!(
        healthz_b.contains("drift_score"),
        "post-shift healthz must burn the drift objective: {healthz_b}"
    );
}
