//! End-to-end telemetry consistency: a synthetic gaming session driven
//! through the full tap pipeline must leave a metrics snapshot that agrees
//! with the pipeline's own returned outcome — every ingested packet
//! counted, every closed slot counted under its decided stage, one title
//! decision per session, and QoE slot counts matching the per-slot lists
//! in the session reports.

use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::domain::{GameTitle, QoeLevel, Stage, StreamSettings};
use gamescope::obs::Registry;
use gamescope::pipeline::monitor::{MonitorConfig, TapMonitor};
use gamescope::sim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
use gamescope::trace::packet::Direction;

fn make_session(title: GameTitle, seed: u64) -> Session {
    SessionGenerator::new().generate(&SessionConfig {
        kind: TitleKind::Known(title),
        settings: StreamSettings::default_pc(),
        gameplay_secs: 45.0,
        fidelity: Fidelity::FullPackets,
        seed,
    })
}

#[test]
fn pipeline_metrics_agree_with_session_reports() {
    let bundle = train_bundle(&TrainConfig::quick());
    let sessions = [
        make_session(GameTitle::Fortnite, 41),
        make_session(GameTitle::Hearthstone, 42),
    ];

    // Track the process-wide nettrace counter around the run: the per-flow
    // stats layer increments it for every packet the monitor folds in.
    let trace_packets_before = Registry::global()
        .snapshot()
        .counter("cgc_trace_packets_total")
        .unwrap_or(0);

    // Private registry so the assertions below are exact even when other
    // tests in this process drive the pipeline concurrently.
    let registry = Registry::new();
    let mut monitor = TapMonitor::with_registry(&bundle, MonitorConfig::default(), &registry);
    let mut fed = 0u64;
    for (i, s) in sessions.iter().enumerate() {
        let offset = i as u64 * 3_000_000;
        for p in &s.packets {
            let tuple = match p.dir {
                Direction::Downstream => s.tuple,
                Direction::Upstream => s.tuple.reversed(),
            };
            monitor.ingest(p.ts + offset, &tuple, p.payload_len);
            fed += 1;
        }
    }
    let reports = monitor.finish_all();
    assert_eq!(reports.len(), sessions.len());

    let snap = registry.snapshot();

    // Packet ingest: both sessions' flows carry platform signatures, so
    // every fed datagram must be counted, none ignored.
    assert_eq!(
        snap.counter("cgc_monitor_ingested_packets_total"),
        Some(fed)
    );
    assert_eq!(snap.counter("cgc_monitor_ignored_packets_total"), Some(0));
    assert_eq!(
        snap.counter("cgc_monitor_finalized_flows_total"),
        Some(reports.len() as u64)
    );
    assert_eq!(snap.gauge("cgc_monitor_active_flows"), Some(0));

    // Slot accounting: the per-stage decision counters must sum to exactly
    // the slots the reports carry, stage by stage.
    let slots_in_reports: u64 = reports
        .iter()
        .map(|m| m.report.stage_slots.len() as u64)
        .sum();
    assert!(slots_in_reports > 0);
    assert_eq!(
        snap.counter("cgc_pipeline_slots_total"),
        Some(slots_in_reports)
    );
    for stage in Stage::ALL {
        let in_reports: u64 = reports
            .iter()
            .flat_map(|m| &m.report.stage_slots)
            .filter(|s| **s == stage)
            .count() as u64;
        let counted = snap
            .get_with(
                "cgc_pipeline_stage_slots_total",
                &[("stage", &stage.to_string())],
            )
            .map_or(0, |m| match m.value {
                gamescope::obs::MetricValue::Counter(v) => v,
                _ => panic!("stage slots must be a counter"),
            });
        assert_eq!(counted, in_reports, "stage {stage}");
    }

    // One title decision per session, and the confidence histogram saw
    // exactly one sample per decision.
    assert_eq!(
        snap.counter("cgc_pipeline_title_decisions_total"),
        Some(reports.len() as u64)
    );
    assert_eq!(
        snap.histogram("cgc_pipeline_title_confidence_pct")
            .map(|h| h.count),
        Some(reports.len() as u64)
    );

    // QoE layer: objective and effective per-level counts each sum to the
    // slot total, and the per-slot QoE lists in the reports match.
    for kind in ["objective", "effective"] {
        let mut sum = 0u64;
        for level in QoeLevel::ALL {
            sum += snap
                .get_with(
                    "cgc_qoe_slots_total",
                    &[("kind", kind), ("level", &level.to_string())],
                )
                .map_or(0, |m| match m.value {
                    gamescope::obs::MetricValue::Counter(v) => v,
                    _ => panic!("qoe slots must be a counter"),
                });
        }
        assert_eq!(sum, slots_in_reports, "kind {kind}");
    }
    let effective_good: u64 = reports
        .iter()
        .flat_map(|m| &m.report.qoe_slots)
        .filter(|&&(_, eff)| eff == QoeLevel::Good)
        .count() as u64;
    let counted_good = snap
        .get_with(
            "cgc_qoe_slots_total",
            &[("kind", "effective"), ("level", "good")],
        )
        .map_or(0, |m| match m.value {
            gamescope::obs::MetricValue::Counter(v) => v,
            _ => 0,
        });
    assert_eq!(counted_good, effective_good);

    // Latency histograms observed the work that produced those decisions.
    // Slots past each session's seed window run feature extraction, and
    // one of every LATENCY_SAMPLE of them is timed.
    let seed_slots = MonitorConfig::default().analyzer.seed_slots as u64;
    let sampled: u64 = reports
        .iter()
        .map(|m| {
            let classified = m.report.stage_slots.len() as u64 - seed_slots;
            classified.div_ceil(gamescope::pipeline::pipeline::LATENCY_SAMPLE)
        })
        .sum();
    let feature_ns = snap.histogram("cgc_pipeline_feature_ns").unwrap();
    assert_eq!(feature_ns.count, sampled);
    assert_eq!(
        snap.histogram("cgc_pipeline_stage_infer_ns").unwrap().count,
        sampled
    );
    assert!(snap.histogram("cgc_pipeline_title_infer_ns").unwrap().count > 0);

    // The nettrace layer records into the process-wide registry (its
    // counters are fired from deep inside per-flow stats); every packet
    // this test fed must have passed through it.
    let trace_packets_after = Registry::global()
        .snapshot()
        .counter("cgc_trace_packets_total")
        .unwrap_or(0);
    assert!(
        trace_packets_after - trace_packets_before >= fed,
        "trace layer saw {} new packets, expected at least {fed}",
        trace_packets_after - trace_packets_before
    );
}
