//! End-to-end proof of the model lifecycle subsystem: a catalog-churn
//! deployment must trip the drift alarm, the alarm must drive a shadow
//! retrain whose candidate lands in the versioned registry, A/B shadow
//! evaluation on post-churn traffic must show the candidate beating the
//! live model, promotion must hot-swap the fleet onto the new version
//! with zero dropped sessions, and rollback must restore the prior
//! version — all observed over live HTTP (`/models`, `/metrics`,
//! `/drift`, `/healthz`), exactly as an operator would drive it. A
//! second test proves the zero-stall swap at the tap: flows in flight
//! across a hot-swap keep continuous journal timelines and finish on
//! the version they pinned.

use std::io::{Read as _, Write as _};
use std::sync::Arc;

use gamescope::deploy::fleet::{run_fleet_with_models, FleetConfig, FleetModels};
use gamescope::deploy::lifecycle::LifecyclePilot;
use gamescope::deploy::lifecycle::PromotePolicy;
use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::lifecycle::{LiveModel, Verdict};
use gamescope::obs::{self, ModelKind, Registry};
use gamescope::pipeline::{ModelSource, ShardedMonitorConfig, ShardedTapMonitor};

fn get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (head.to_string(), body.to_string())
}

/// Extracts the raw JSON value of `key` inside the per-model object for
/// `model` on the compact `/drift` report.
fn model_field(body: &str, model: &str, key: &str) -> String {
    let anchor = format!("\"model\":\"{model}\"");
    let start = body
        .find(&anchor)
        .unwrap_or_else(|| panic!("no {model:?} object in {body}"));
    let rest = &body[start..];
    let pat = format!("\"{key}\":");
    let at = rest
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key:?} after {anchor} in {body}"));
    let val = &rest[at + pat.len()..];
    let end = val
        .find([',', '}', ']'])
        .unwrap_or_else(|| panic!("unterminated {key:?} value"));
    val[..end].trim().to_string()
}

fn scratch_registry_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cgc-e2e-lifecycle-{}", std::process::id()))
}

#[test]
fn drift_alarm_drives_retrain_shadow_promotion_and_rollback_over_http() {
    // The observability stack the CLI installs for `fleet --serve`:
    // windows sized exactly like tests/e2e_quality.rs so the churn phase
    // trips the label-free detector within one fleet batch.
    obs::quality::install_global(obs::QualityConfig {
        ring_capacity: 1 << 18,
        window: 64,
        ..obs::QualityConfig::default()
    });
    obs::drift::install_global(obs::DriftConfig {
        ring_capacity: 1 << 18,
        reference_size: 256,
        window: 128,
        min_window: 32,
        ..Default::default()
    });

    // The lifecycle pilot: versioned registry on disk, hot slot serving
    // the seed bundle as v1, manual promotion (the operator decides).
    let dir = scratch_registry_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let bundle = train_bundle(&TrainConfig::quick());
    let pilot = Arc::new(
        LifecyclePilot::open(
            &dir,
            bundle,
            0x5EED,
            Registry::global(),
            PromotePolicy::Manual,
        )
        .unwrap(),
    );
    assert_eq!(pilot.live().version(), 1);

    // Serve /models the way the CLI does: the route resolves the pilot
    // per request.
    let models_pilot = Arc::clone(&pilot);
    let server = obs::TelemetryServer::spawn_with(
        "127.0.0.1:0",
        || Registry::global().snapshot(),
        obs::ServeOptions {
            journal: None,
            trace: None,
            slo: None,
            quality: obs::quality::global().map(|(_, hub)| Arc::clone(hub)),
            drift: obs::drift::global().map(|(_, engine)| Arc::clone(engine)),
            build: None,
            models: Some(Arc::new(move || Some(models_pilot.models_json()))),
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let (head, _) = get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let (head, models_initial) = get(addr, "/models");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        models_initial.contains("\"live_version\": 1"),
        "{models_initial}"
    );
    assert!(
        models_initial.contains("\"shadow\": null"),
        "{models_initial}"
    );

    let fleet_cfg = |n: usize, seed: u64, unknown: f64, impaired: f64| FleetConfig {
        n_sessions: n,
        seed,
        duration_scale: 0.05,
        unknown_fraction: unknown,
        impaired_fraction: impaired,
        workers: 1,
        ..Default::default()
    };
    let live_models = FleetModels {
        source: ModelSource::Live(pilot.live()),
        shadow: None,
    };

    // --- Phase A: stationary deployment on the live slot ----------------
    // Freezes the drift reference; every session is stamped v1.
    let stationary = run_fleet_with_models(live_models, &fleet_cfg(420, 42, 0.0, 0.0));
    assert_eq!(stationary.len(), 420, "no session dropped");
    assert!(stationary.iter().all(|r| r.model_version == 1));
    let (_, drift_a) = get(addr, "/drift");
    assert_eq!(model_field(&drift_a, "title", "reference_frozen"), "true");
    assert!(!drift_a.contains("\"alarm\":true"), "phase A: {drift_a}");

    // --- Phase B: catalog churn + impairment ramp → drift alarm ---------
    let churn = run_fleet_with_models(live_models, &fleet_cfg(160, 20250301, 0.7, 1.0));
    assert_eq!(churn.len(), 160);
    let (_, drift_b) = get(addr, "/drift");
    assert_eq!(
        model_field(&drift_b, "title", "alarm"),
        "true",
        "churn must trip the drift alarm: {drift_b}"
    );

    // --- Drift alarm → shadow retrain → registered candidate ------------
    // The alarm handler's shape: re-label the churn batch's journaled
    // decisions off-thread, fit, register.
    let version = pilot.shadow_retrain(churn).join().unwrap().unwrap();
    assert_eq!(version, 2);
    assert_eq!(pilot.registry().latest().unwrap().unwrap().version, 2);
    let (_, models_shadowed) = get(addr, "/models");
    assert!(
        models_shadowed.contains("\"version\": 2"),
        "candidate must surface on /models: {models_shadowed}"
    );

    // --- Phase C: A/B shadow evaluation on post-churn traffic -----------
    // The same shifted distribution, fresh seed: every live decision is
    // mirrored to the candidate and scored against withheld truth.
    let shadow = pilot.shadow().expect("candidate armed");
    let mirrored = run_fleet_with_models(
        FleetModels {
            source: ModelSource::Live(pilot.live()),
            shadow: Some(&shadow),
        },
        &fleet_cfg(120, 777, 0.7, 1.0),
    );
    assert_eq!(mirrored.len(), 120);
    assert!(mirrored.iter().all(|r| r.model_version == 1));

    let pattern = shadow.score.score(ModelKind::Pattern);
    assert!(pattern.truth_n >= 20, "thin evidence: {pattern:?}");
    assert!(
        pattern.cand_accuracy > pattern.live_accuracy,
        "candidate must beat live on post-churn traffic: {pattern:?}"
    );
    let assessment = pilot.assess().expect("shadow riding");
    assert_eq!(
        assessment.verdict,
        Verdict::Promote,
        "reason: {}",
        assessment.reason
    );

    // The scoreboard is scraped as cgc_lifecycle_* families.
    let (_, metrics_c) = get(addr, "/metrics");
    assert!(
        metrics_c.contains("cgc_model_version{model=\"pattern\"} 1"),
        "{metrics_c}"
    );
    assert!(
        metrics_c.contains("cgc_lifecycle_shadow_version 2"),
        "{metrics_c}"
    );
    assert!(
        metrics_c.contains("cgc_lifecycle_mirrored_total{model=\"pattern\"} 120"),
        "{metrics_c}"
    );
    assert!(
        metrics_c.contains("cgc_lifecycle_agreement_pct{model=\"title\"} 100"),
        "identical title forks must agree: {metrics_c}"
    );
    let (_, models_scored) = get(addr, "/models");
    assert!(
        models_scored.contains("\"verdict\": \"promote\""),
        "{models_scored}"
    );

    // --- Promotion: hot-swap with zero dropped sessions ------------------
    // A pin taken before the swap keeps serving v1 (in-flight sessions
    // are unaffected); everything admitted after is stamped v2.
    let pinned = pilot.live().load();
    assert_eq!(pilot.promote(), Some(2));
    assert_eq!(pinned.version(), 1, "in-flight pin survives the swap");
    assert_eq!(pilot.live().version(), 2);
    let promoted = run_fleet_with_models(live_models, &fleet_cfg(24, 9, 0.7, 1.0));
    assert_eq!(promoted.len(), 24, "no session dropped across the swap");
    assert!(promoted.iter().all(|r| r.model_version == 2));
    let (_, metrics_d) = get(addr, "/metrics");
    assert!(
        metrics_d.contains("cgc_model_version{model=\"pattern\"} 2"),
        "{metrics_d}"
    );
    assert!(
        metrics_d.contains("cgc_lifecycle_shadow_version 0"),
        "{metrics_d}"
    );
    assert!(
        metrics_d.contains("cgc_lifecycle_promotions_total 1"),
        "{metrics_d}"
    );
    let (_, models_promoted) = get(addr, "/models");
    assert!(
        models_promoted.contains("\"live_version\": 2"),
        "{models_promoted}"
    );
    assert!(
        models_promoted.contains("\"shadow\": null"),
        "{models_promoted}"
    );

    // --- Rollback: instant restore of the prior version ------------------
    assert_eq!(pilot.rollback(), Some(1));
    assert_eq!(pilot.live().version(), 1);
    let rolled = run_fleet_with_models(live_models, &fleet_cfg(12, 11, 0.0, 0.0));
    assert!(rolled.iter().all(|r| r.model_version == 1));
    let (_, metrics_e) = get(addr, "/metrics");
    assert!(
        metrics_e.contains("cgc_model_version{model=\"pattern\"} 1"),
        "{metrics_e}"
    );
    assert!(
        metrics_e.contains("cgc_lifecycle_rollbacks_total 1"),
        "{metrics_e}"
    );
    let (_, models_rolled) = get(addr, "/models");
    assert!(
        models_rolled.contains("\"live_version\": 1"),
        "{models_rolled}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The zero-stall swap at the tap: a sharded monitor serving from a hot
/// slot is fed half its flows, hot-swapped to v2 mid-stream, then fed
/// the rest. Every flow must finalize (zero dropped slots), flows
/// admitted before the swap must finish on v1 and flows admitted after
/// on v2, and every journal timeline must stay continuous — admission
/// first, monotone timestamps, closure last, its `ModelVersion` event
/// matching the report's stamp.
#[test]
fn hot_swap_under_tap_load_keeps_timelines_continuous() {
    use gamescope::domain::{GameTitle, StreamSettings};
    use gamescope::obs::event::EventKind;
    use gamescope::obs::{Journal, JournalConfig};
    use gamescope::sim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
    use gamescope::trace::packet::Direction;

    let bundle = train_bundle(&TrainConfig::quick());
    let live = Arc::new(LiveModel::new(bundle.clone()));

    let titles = [
        GameTitle::Fortnite,
        GameTitle::GenshinImpact,
        GameTitle::CsGo,
        GameTitle::Dota2,
    ];
    let mut generator = SessionGenerator::new();
    let sessions: Vec<Session> = (0..8u64)
        .map(|i| {
            generator.generate(&SessionConfig {
                kind: TitleKind::Known(titles[i as usize % titles.len()]),
                settings: StreamSettings::default_pc(),
                gameplay_secs: 25.0,
                fidelity: Fidelity::FullPackets,
                seed: 300 + i,
            })
        })
        .collect();
    // Interleave: session i starts at i*3 s, so the cutover at 12 s falls
    // after sessions 0–3 were admitted and before 4–7 start.
    let mut feed: Vec<(u64, gamescope::trace::packet::FiveTuple, u32)> = Vec::new();
    for (i, s) in sessions.iter().enumerate() {
        let offset = i as u64 * 3_000_000;
        for p in &s.packets {
            let tuple = match p.dir {
                Direction::Downstream => s.tuple,
                Direction::Upstream => s.tuple.reversed(),
            };
            feed.push((p.ts + offset, tuple, p.payload_len));
        }
    }
    feed.sort_by_key(|(ts, _, _)| *ts);
    const CUTOVER: u64 = 12_000_000;
    let split = feed.partition_point(|(ts, _, _)| *ts < CUTOVER);

    let registry = Registry::new();
    let (sink, mut journal) = Journal::new(JournalConfig::default(), &registry);
    let mut monitor = ShardedTapMonitor::with_registry_and_journal(
        Arc::clone(&live),
        ShardedMonitorConfig::with_shards(4),
        &registry,
        sink.clone(),
    );

    for (ts, tuple, len) in &feed[..split] {
        monitor.ingest(*ts, tuple, *len);
    }
    // stats() round-trips every shard, so all pre-cutover admissions have
    // happened before the publish — the version split is deterministic.
    let pre = monitor.stats();
    assert_eq!(pre.total().active_flows, 4);
    assert_eq!(live.publish(bundle), 2);
    for (ts, tuple, len) in &feed[split..] {
        monitor.ingest(*ts, tuple, *len);
    }
    let (out, stats) = monitor.finish_all();

    // Zero dropped or stalled slots: every flow finalized, every packet
    // ingested.
    assert_eq!(out.len(), 8);
    assert_eq!(stats.total().ingested_packets as usize, feed.len());
    assert_eq!(stats.total().finalized_flows, 8);
    assert_eq!(live.version(), 2);
    assert_eq!(live.versions_alive(), 2);

    journal.drain();
    assert_eq!(gamescope::obs::journal::dropped_events(&sink), 0);
    for m in &out {
        // Version split: admitted before the cutover → pinned v1;
        // admitted after → v2. In-flight flows finished on their pin.
        let expect = if m.started_at < CUTOVER { 1 } else { 2 };
        assert_eq!(
            m.model_version, expect,
            "flow {} admitted at {} must serve v{expect}",
            m.tuple, m.started_at
        );

        let tl = journal
            .timeline(m.tuple.flow_id())
            .unwrap_or_else(|| panic!("no timeline for {}", m.tuple));
        assert!(!tl.truncated, "timeline truncated for {}", m.tuple);
        // Continuous across the swap: exactly one admission opens the
        // timeline, exactly one closure ends it — the swap never
        // interrupted, re-admitted, or truncated the flow.
        assert!(
            matches!(
                tl.events.first().map(|e| &e.kind),
                Some(EventKind::FlowAdmitted { .. })
            ),
            "first event must be admission: {:?}",
            tl.events.first()
        );
        assert!(
            matches!(
                tl.events.last().map(|e| &e.kind),
                Some(EventKind::FlowClosed { .. })
            ),
            "last event must be closure: {:?}",
            tl.events.last()
        );
        let admissions = tl
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FlowAdmitted { .. }))
            .count();
        let closures = tl
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FlowClosed { .. }))
            .count();
        assert_eq!(
            (admissions, closures),
            (1, 1),
            "flow {} must stay one unbroken session across the swap",
            m.tuple
        );
        assert_eq!(tl.events.last().unwrap().ts, m.last_seen);
        // Exactly one version stamp, agreeing with the report.
        let stamped: Vec<u32> = tl
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::ModelVersion { version } => Some(version),
                _ => None,
            })
            .collect();
        assert_eq!(stamped, vec![m.model_version], "{}", m.tuple);
    }
}
