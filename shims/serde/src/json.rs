//! JSON text encoding for the shim [`Value`] tree.

use crate::{Error, Value};

/// Writes a value as compact JSON.
pub fn write_compact(v: &Value) -> String {
    let mut out = String::new();
    write(v, &mut out, None, 0);
    out
}

/// Writes a value as indented JSON (two spaces).
pub fn write_pretty(v: &Value) -> String {
    let mut out = String::new();
    write(v, &mut out, Some(2), 0);
    out
}

fn write(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            // Rust's shortest round-trip Display; force a fraction marker so
            // the value re-parses as a float.
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                newline(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write(item, out, indent, level + 1);
            }
            if !pairs.is_empty() {
                newline(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at offset {}, got `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("bad literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(pairs)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| Error::new("bad \\u escape"))?);
                    }
                    c => return Err(Error::new(format!("bad escape `\\{}`", c as char))),
                },
                _ => unreachable!("loop stops at quote or backslash"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("bad hex digit in \\u escape"))?;
            n = n * 16 + d;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}
