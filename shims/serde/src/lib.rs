//! Offline `serde` shim.
//!
//! Instead of upstream's visitor-based data model, this shim serializes
//! through a JSON-like [`Value`] tree: `Serialize` renders a value into the
//! tree, `Deserialize` reconstructs from it, and the `serde_json` shim
//! handles text encoding. Integers stay exact (`i64`/`u64` variants) so
//! round-trips are lossless.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

mod json;
pub use json::{parse, write_compact, write_pretty};

/// A JSON value tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Looks up an element of an array value.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| Error::new(format!("missing array element {i}"))),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => *f as u64,
                    other => {
                        return Err(Error::new(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Float(f)
                } else {
                    // JSON has no non-finite literals; encode as strings and
                    // accept them back below.
                    Value::String(format!("{f}"))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::String(s) => s
                        .parse::<$t>()
                        .map_err(|_| Error::new(format!("bad float literal `{s}`"))),
                    other => Err(Error::new(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!("expected char, got {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of {N} elements, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($t::from_value(v.index($i)?)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------- std::net

impl Serialize for std::net::IpAddr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for std::net::IpAddr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => s
                .parse()
                .map_err(|_| Error::new(format!("bad IP address `{s}`"))),
            other => Err(Error::new(format!(
                "expected IP address string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
