//! Offline `crossbeam` shim.
//!
//! `channel::{unbounded, bounded}` over `std::sync::mpsc` — multi-producer
//! single-consumer, which covers this workspace's fan-out patterns (each
//! shard worker owns its receiver). Scoped threads are available directly
//! from `std::thread::scope` (stable since 1.63), so no `thread` module is
//! shimmed.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Cloneable sending half.
    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half (single consumer).
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Channel with unbounded buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Channel that blocks senders beyond `cap` queued messages.
    pub struct SyncSender<T> {
        inner: std::sync::mpsc::SyncSender<T>,
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            SyncSender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> SyncSender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (SyncSender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channels_deliver_in_order() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
