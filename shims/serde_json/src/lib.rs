//! Offline `serde_json` shim: text encoding over the `serde` shim's
//! [`Value`] tree. Covers `to_string`, `to_string_pretty`, `from_str`.

pub use serde::{Error, Value};

/// Result alias matching upstream's `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::write_compact(&value.to_value()))
}

/// Serializes a value to indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::write_pretty(&value.to_value()))
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    T::from_value(&serde::parse(s)?)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Inner {
        label: String,
        weights: Vec<f64>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        One(u32),
        Named { a: i64, b: bool },
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Outer {
        id: u64,
        ratio: f64,
        inner: Inner,
        shapes: Vec<Shape>,
        opt: Option<u8>,
        fixed: [f64; 3],
        addr: std::net::IpAddr,
        pair: (u16, String),
    }

    #[test]
    fn roundtrips_struct_graph() {
        let v = Outer {
            id: u64::MAX,
            ratio: 0.1,
            inner: Inner {
                label: "he\"llo\n\u{1f600}".into(),
                weights: vec![1.5, -2.25, 1e-9],
            },
            shapes: vec![Shape::Unit, Shape::One(7), Shape::Named { a: -3, b: true }],
            opt: None,
            fixed: [1.0, 2.0, 3.0],
            addr: "10.0.0.1".parse().unwrap(),
            pair: (80, "x".into()),
        };
        let json = super::to_string(&v).unwrap();
        let back: Outer = super::from_str(&json).unwrap();
        assert_eq!(back, v);
        let pretty = super::to_string_pretty(&v).unwrap();
        let back2: Outer = super::from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn integers_are_exact() {
        let json = super::to_string(&vec![u64::MAX, 0, 1 << 60]).unwrap();
        let back: Vec<u64> = super::from_str(&json).unwrap();
        assert_eq!(back, vec![u64::MAX, 0, 1 << 60]);
    }

    #[test]
    fn non_finite_floats_roundtrip() {
        let xs = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1.0];
        let json = super::to_string(&xs).unwrap();
        let back: Vec<f64> = super::from_str(&json).unwrap();
        assert!(back[0].is_nan());
        assert_eq!(back[1], f64::INFINITY);
        assert_eq!(back[2], f64::NEG_INFINITY);
        assert_eq!(back[3], 1.0);
    }

    #[test]
    fn errors_are_reported() {
        assert!(super::from_str::<u32>("{").is_err());
        assert!(super::from_str::<u32>("true").is_err());
        assert!(super::from_str::<Vec<u8>>("[1,2,999]").is_err());
    }
}
