//! Offline `proptest` shim.
//!
//! Randomized property testing with the API subset this workspace uses:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! range and `any::<T>()` strategies, `prop::collection::vec`,
//! [`prop_oneof!`], `prop_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-case seed so failures are
//! reproducible; there is no shrinking — the failing case's seed and index
//! are reported instead.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Object-safe strategy facade used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    inner: std::rc::Rc<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased strategies (see [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_signed {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_signed!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Full-domain strategy for `T` (`any::<u64>()`, ...).
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection-size specification accepted by [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derives the per-case RNG. Seeds mix the property name so different
/// properties explore different streams.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
}

/// Defines deterministic randomized property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a property holds; panics with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts two expressions are equal; panics with context on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_size(xs in prop::collection::vec(any::<u8>(), 0..9)) {
            prop_assert!(xs.len() < 9);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..5).prop_map(|x| x * 2),
                (10u32..15).prop_map(|x| x + 1),
            ]
        ) {
            prop_assert!((v <= 8 && v % 2 == 0) || (11..16).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| crate::Strategy::generate(&crate::any::<u64>(), &mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| crate::Strategy::generate(&crate::any::<u64>(), &mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
