//! Offline `bytes` shim: the `Buf`/`BufMut` trait subset used by the RTP
//! codec — network-byte-order reads over `&[u8]` and writes into `Vec<u8>`.

/// Sequential big-endian reader. Implemented for `&[u8]`, advancing the
/// slice in place. Reads past the end panic, as upstream does.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16(&mut self) -> u16;
    fn get_u32(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u16(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_be_bytes([head[0], head[1]])
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes([head[0], head[1], head[2], head[3]])
    }
}

/// Sequential big-endian writer. Implemented for `Vec<u8>`.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = Vec::new();
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdeadbeef);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 7);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdeadbeef);
        assert_eq!(r.remaining(), 0);
    }
}
