//! Offline `criterion` shim: a minimal wall-clock benchmark harness with
//! the API subset this workspace's benches use (`bench_function`,
//! `benchmark_group` with `sample_size`/`throughput`, `criterion_group!`,
//! `criterion_main!`, `black_box`). Results print as `ns/iter` plus
//! element/byte throughput when configured; there is no statistical
//! analysis or HTML report.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured quantity per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    result_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a batch size targeting ~10 ms per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000);

        let mut best = f64::INFINITY;
        for _ in 0..self.samples.max(1) {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.result_ns = best;
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let time = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.0} elem/s", n as f64 * 1e9 / ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  thrpt: {:.2} MiB/s",
                n as f64 * 1e9 / ns / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!("{name:<48} time: {time}/iter{rate}");
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b);
        report(name, b.result_ns, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// Named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            b.result_ns,
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function running each registered bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_measures_something() {
        let mut c = super::Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(super::Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }
}
