//! Offline `parking_lot` shim: `Mutex` and `RwLock` with the non-poisoning
//! API, implemented over `std::sync`. A panicked holder does not poison the
//! lock — matching parking_lot semantics.

pub use guards::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

mod guards {
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
}

/// Non-poisoning mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
