//! Offline `rand` shim.
//!
//! Implements the `rand 0.8` API subset this workspace uses: `Rng`
//! (`gen`, `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom::shuffle`.
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64 — a different stream
//! than upstream's ChaCha12, but deterministic, well distributed and fast,
//! which is all the workspace's seeded tests rely on.

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard type over its full range
    /// (floats: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    /// Panics on empty ranges, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire), unbiased
/// enough for simulation purposes and branch-free.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers driven by an RNG.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1..=254u8);
            assert!((1..=254).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
