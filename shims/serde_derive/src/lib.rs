//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Parses the item token stream directly (no `syn`/`quote`) and emits
//! impls of the shim `serde::Serialize` / `serde::Deserialize` traits,
//! which work over a JSON-like `serde::Value` tree.
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields,
//! - tuple structs,
//! - enums with unit, tuple and struct variants,
//! - no generic parameters, no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips outer attributes (`#[...]`, including expanded doc comments).
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            _ => return,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Parses the field names out of a `{ ... }` struct body.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("unexpected token in struct body: {other:?}"),
        };
        fields.push(name);
        // Expect `:` then the type; skip type tokens until a comma at
        // angle-bracket depth zero.
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        let mut depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    fields
}

/// Counts the top-level types in a `( ... )` tuple body.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_token = false;
    for tt in group {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("unexpected token in enum body: {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                None => break,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types ({name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("unexpected enum body: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let pushes: String = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "fields.push((\"{f}\".to_string(), \
                                 ::serde::Serialize::to_value(&self.{f})));\n"
                            )
                        })
                        .collect();
                    format!(
                        "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)"
                    )
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\
                             \"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),\n"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let pushes: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n}}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?")
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(v.index({i})?)?"))
                        .collect();
                    format!("Ok({name}({}))", inits.join(", "))
                }
                Fields::Unit => format!("Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     {body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),\n", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),\n"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(inner.index({i})?)?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn}({})),\n",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     match v {{\n\
                       ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => Err(::serde::Error::new(format!(\
                           \"unknown {name} variant {{other}}\"))),\n\
                       }},\n\
                       ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                           {tagged_arms}\
                           other => Err(::serde::Error::new(format!(\
                             \"unknown {name} variant {{other}}\"))),\n\
                         }}\n\
                       }},\n\
                       _ => Err(::serde::Error::new(\
                         \"expected string or single-key object for {name}\".to_string())),\n\
                     }}\n}}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Deserialize impl parses")
}
