//! # gamescope — facade crate
//!
//! Re-exports the workspace crates under short, stable names so examples
//! and downstream users have a single dependency:
//!
//! * [`domain`] — shared vocabulary (titles, stages, settings, QoE levels)
//! * [`trace`] — packet/flow model, RTP codec, pcap I/O, impairments
//! * [`sim`] — synthetic session and traffic generator
//! * [`ml`] — from-scratch statistical ML (forests, SVM, KNN, metrics)
//! * [`features`] — packet-group, launch, volumetric and transition features
//! * [`pipeline`] — the real-time context classification pipeline
//! * [`obs`] — metrics registry, histograms, span timers and exporters
//! * [`lifecycle`] — versioned model registry, hot-swap slot, A/B shadow
//!   scoring
//! * [`ingest`] — paced replay, bounded ingest queues and graceful shutdown
//! * [`deploy`] — training, fleet simulation and aggregate reporting

#![warn(missing_docs)]

pub use cgc_core as pipeline;
pub use cgc_deploy as deploy;
pub use cgc_domain as domain;
pub use cgc_features as features;
pub use cgc_ingest as ingest;
pub use cgc_lifecycle as lifecycle;
pub use cgc_obs as obs;
pub use gamesim as sim;
pub use mlcore as ml;
pub use nettrace as trace;
