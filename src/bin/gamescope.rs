//! `gamescope` — the capture-file CLI.
//!
//! ```text
//! gamescope train [--quick] [--out bundle.json]
//! gamescope generate --out s.pcap [--title fortnite] [--secs 90] [--seed 7]
//! gamescope analyze <s.pcap> [--bundle bundle.json] [--quick]
//! gamescope classify --pcap s.pcap [--bundle bundle.json]
//! gamescope fleet [--sessions 300] [--bundle bundle.json] [--telemetry-every 50]
//!                 [--serve 127.0.0.1:9090] [--journal fleet.jsonl]
//!                 [--registry models/] [--promote auto|manual] [--retrain]
//!                 [--impair lte-handover]
//! gamescope fleet --replay s.pcap|sim [--pace 1.0] [--backpressure block]
//! gamescope fleet --replay merge --input a.pcap --input b.pcap@-1500
//! ```
//!
//! Every subcommand accepts `--metrics <path|->`: on exit the global
//! metrics registry is snapshotted and dumped — Prometheus text to stdout
//! for `-`, JSON for paths ending in `.json`, Prometheus text otherwise.
//!
//! The flight recorder rides along the same way: `--journal <path|->`
//! dumps per-flow decision timelines as JSONL on exit, `--journal-table`
//! prints them as a human table on stderr, and `--serve <addr>` runs a
//! live telemetry endpoint (`/metrics`, `/healthz`, `/slo`, `/journal`,
//! `/trace`) for the duration of the command — with an off-thread
//! journal pump keeping `/journal` fresh while the command runs.
//! `--trace-sample 1/8` span-traces one flow in eight end to end through
//! the pipeline; `--trace-table` prints the sampled timelines on exit.
//!
//! `fleet --replay` switches from offline batch analysis to the live
//! ingestion path: the capture (a pcap file, `sim` for a generated
//! tap-fleet feed, or `merge` for several pcaps fused by the k-way
//! merge, each `--input` optionally carrying a `@<signed µs>` clock-skew
//! offset) is replayed at its recorded timestamps through bounded ingest
//! queues into the sharded monitor. Ctrl-C anywhere triggers a graceful
//! drain: producers quiesce, queues empty, and every open flow still
//! gets its final session verdict.

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use gamescope::deploy::fleet::{
    build_tap_feed, run_fleet, run_fleet_with_models, FleetConfig, FleetModels, TapFleetConfig,
};
use gamescope::deploy::lifecycle::{self, LifecyclePilot, PromotePolicy};
use gamescope::deploy::report::{journal_table, metrics_table, quality_table, trace_table};
use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::domain::{GameTitle, QoeLevel, StreamSettings};
use gamescope::ingest::{
    merge_sources, pcap_feed, replay, split_round_robin, BackpressurePolicy, IngestConfig,
    IngestEngine, MergeConfig, MergeSource, MonitorSink, ReplayConfig,
};
use gamescope::obs;
use gamescope::pipeline::monitor::{MonitorConfig, TapMonitor};
use gamescope::pipeline::shard::{ShardedMonitorConfig, ShardedTapMonitor};
use gamescope::pipeline::{ModelBundle, ModelSource};
use gamescope::sim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use gamescope::trace::clock::RealClock;
use gamescope::trace::{pcap, ImpairmentProfile};

/// Ctrl-C handling: a process-wide flag the long-running paths poll so an
/// interrupt triggers a graceful drain instead of an abort.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the SIGINT handler; checked by fleet workers and replay.
    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    /// True once Ctrl-C has been pressed.
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::Relaxed)
    }

    #[cfg(unix)]
    pub fn install() {
        unsafe extern "C" fn on_sigint(_signum: i32) {
            // Only async-signal-safe work here: one atomic store.
            INTERRUPTED.store(true, Ordering::SeqCst);
        }
        // std links libc; declaring `signal` directly avoids a libc crate
        // dependency. SIG_ERR is usize::MAX.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        let handler: unsafe extern "C" fn(i32) = on_sigint;
        unsafe {
            signal(SIGINT, handler as usize);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

const USAGE: &str = "\
gamescope — cloud gaming context classification from network traffic

USAGE:
  gamescope train    [--quick] [--out <bundle.json>]
  gamescope generate --out <s.pcap> [--title <name>] [--secs <n>] [--seed <n>]
  gamescope analyze  <s.pcap> [--bundle <bundle.json>] [--quick]
  gamescope classify --pcap <s.pcap> [--bundle <bundle.json>] [--quick]
  gamescope fleet    [--sessions <n>] [--bundle <bundle.json>] [--quick]
                     [--telemetry-every <n>] [--serve <addr>]
                     [--registry <dir>] [--promote <auto|manual>] [--retrain]
                     [--impair <profile>]
  gamescope fleet    --replay <s.pcap|sim|merge> [--pace <x>] [--shards <n>]
                     [--backpressure <block|drop-oldest|drop-newest>]
                     [--queues <n>] [--queue-capacity <n>] [--secs <n>]
                     [--input <pcap[@offset_us]>]... [--tolerance <us>]
                     [--split <m>]

FLEET REPLAY:
  --replay <src>       drive the live ingestion path instead of offline
                       batch analysis: 'sim' generates an interleaved
                       tap-fleet feed, 'merge' fuses several --input
                       pcaps with the k-way merge, anything else is read
                       as a single pcap
  --input <p[@off]>    (merge source, repeatable) a pcap to fuse; the
                       optional @<signed µs> clock-skew offset shifts its
                       timestamps onto the shared axis, e.g.
                       --input b.pcap@-1500 for a clock 1.5 ms ahead
  --tolerance <us>     merge reordering tolerance in µs (default 1000);
                       records arriving later than this against their
                       source's frontier are still delivered but counted
                       in cgc_ingest_merge_late_total{source=...}
  --split <m>          (sim source) split the generated feed round-robin
                       into m simulated taps and fuse them back with the
                       merge — demonstrates split+merge identity
  --pace <x>           speed multiplier over the recorded timeline
                       (1.0 = real time, 2.0 = double speed, 0 = as fast
                       as possible; default 1.0)
  --backpressure <p>   full-queue policy: block (lossless, default),
                       drop-oldest (freshest wins), drop-newest
  --queues <n>         ingest queues between producers and the router
  --queue-capacity <n> slots per queue (power of two)
  --shards <n>         monitor worker shards
  --secs <n>           gameplay seconds per simulated session (sim source)

FLEET LIFECYCLE:
  --registry <dir>     serve models from a versioned on-disk registry
                       through a hot-swappable slot: the newest stored
                       version is loaded (the bundle seeds v1 on first
                       run), and a drift alarm triggers a shadow retrain
                       from the run's journaled decisions, A/B shadow
                       evaluation on fresh traffic, and a promote/hold
                       verdict; the registry and verdict are served on
                       /models when --serve is given
  --promote <policy>   what to do with a Promote verdict: 'manual'
                       (default) only reports it, 'auto' hot-swaps the
                       candidate live with zero pipeline stall
  --retrain            force the shadow retrain even without a drift
                       alarm

FLEET IMPAIRMENT:
  --impair <profile>   route the impaired fraction of sessions through a
                       named adversarial network profile instead of the
                       legacy generic poor-network channel. Profiles
                       (mildest first): clean, dsl-bloated, lossy-wifi,
                       lte-handover, congested-evening. See
                       docs/IMPAIRMENTS.md for the knob catalog and the
                       symptom signature each leaves on /metrics and
                       /drift. With --quality or --serve the quality and
                       drift families carry a profile=<name> label.

Ctrl-C during fleet or replay triggers a graceful drain: in-flight work
finishes, queues empty, and open flows get final session verdicts.

OPTIONS (all subcommands):
  --metrics <path|->   dump a metrics snapshot on exit: '-' prints
                       Prometheus text to stdout, '*.json' writes JSON,
                       anything else writes Prometheus text to the path
  --metrics-table      print the snapshot as an aligned table on stderr
  --journal <path|->   dump flight-recorder timelines as JSONL on exit:
                       '-' prints to stdout, anything else writes the path
  --journal-table      print the timelines as an aligned table on stderr
  --trace-sample <n>   span-trace 1-in-n flows end to end through the
                       pipeline (ingest, merge, queue, router, shard,
                       slot, classifier, verdict); accepts '8' or '1/8'
  --trace-table        print sampled span timelines as an aligned table
                       on stderr (implies --trace-sample 1 unless given)
  --serve <addr>       serve GET /metrics, /healthz, /slo, /journal,
                       /quality, /drift, /models and /trace (filter with
                       ?flow=<hex>&slot=<n>) over HTTP (e.g.
                       127.0.0.1:9090; port 0 picks a free port) while
                       the command runs
  --quality            stream classification-quality telemetry: fleet
                       sessions join predictions against withheld truth
                       into rolling confusion gauges, and every
                       classifier feeds the label-free drift engine; a
                       quality table and drift verdict print on exit
                       (implied by --serve)
  --drift-window <n>   drift comparison window in recent scores
                       (default 256)
  --drift-reference <n> reference distribution size; the reference
                       freezes once this many warmup scores arrive
                       (default 512)
";

/// Removes `--name <value>` from `args`, returning the value.
fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == name) {
        if i + 1 >= args.len() {
            return Err(format!("{name} requires a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Removes a bare `--name` flag from `args`, returning its presence.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == name) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{name}: cannot parse {v:?}"))
}

/// Parses a `--trace-sample` spec: `8` and `1/8` both mean "trace one
/// flow in eight".
fn parse_sample(v: &str) -> Result<u64, String> {
    let tail = v.strip_prefix("1/").unwrap_or(v);
    match tail.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "--trace-sample: {v:?} is not a rate (use a positive N or 1/N)"
        )),
    }
}

/// Splits a merge `--input` spec `path[@signed_offset_us]`: the signed
/// integer after the last `@` is the capture's clock-skew correction in
/// µs. A spec whose tail is not an integer is a plain path (so paths
/// containing `@` still work without an offset).
fn parse_input_spec(spec: &str) -> (String, i64) {
    if let Some((path, off)) = spec.rsplit_once('@') {
        if let Ok(offset) = off.parse::<i64>() {
            return (path.to_string(), offset);
        }
    }
    (spec.to_string(), 0)
}

/// Case/punctuation-insensitive catalog lookup: `cs_go`, `CS:GO` and
/// `csgo` all resolve to the same title.
fn find_title(input: &str) -> Option<GameTitle> {
    let norm = |s: &str| -> String {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let wanted = norm(input);
    if wanted.is_empty() {
        return None;
    }
    if let Some(t) = GameTitle::ALL
        .into_iter()
        .find(|t| norm(t.name()) == wanted)
    {
        return Some(t);
    }
    // Unique-prefix fallback: `csgo` → CS:GO/CS2, `baldur` → Baldur's Gate 3.
    let mut matches = GameTitle::ALL
        .into_iter()
        .filter(|t| norm(t.name()).starts_with(&wanted));
    match (matches.next(), matches.next()) {
        (Some(t), None) => Some(t),
        _ => None,
    }
}

/// Loads `--bundle <path>` or trains one (`--quick` for the fast config).
fn bundle_from(args: &mut Vec<String>) -> Result<ModelBundle, String> {
    let quick = take_flag(args, "--quick");
    if let Some(path) = take_value(args, "--bundle")? {
        return ModelBundle::load(&path).map_err(|e| format!("loading bundle {path}: {e}"));
    }
    eprintln!(
        "no --bundle given; training one ({} config)...",
        if quick { "quick" } else { "default" }
    );
    let cfg = if quick {
        TrainConfig::quick()
    } else {
        TrainConfig::default()
    };
    Ok(train_bundle(&cfg))
}

fn cmd_train(mut args: Vec<String>) -> Result<(), String> {
    let quick = take_flag(&mut args, "--quick");
    let out = take_value(&mut args, "--out")?.unwrap_or_else(|| "bundle.json".into());
    reject_extra(&args)?;
    let cfg = if quick {
        TrainConfig::quick()
    } else {
        TrainConfig::default()
    };
    eprintln!(
        "training models ({} config)...",
        if quick { "quick" } else { "default" }
    );
    let bundle = train_bundle(&cfg);
    bundle
        .save(&out)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote trained bundle to {out}");
    Ok(())
}

fn cmd_generate(mut args: Vec<String>) -> Result<(), String> {
    let out = take_value(&mut args, "--out")?.ok_or("generate requires --out <s.pcap>")?;
    let title = match take_value(&mut args, "--title")? {
        Some(name) => find_title(&name).ok_or_else(|| {
            let names: Vec<&str> = GameTitle::ALL.iter().map(|t| t.name()).collect();
            format!("unknown title {name:?}; catalog: {}", names.join(", "))
        })?,
        None => GameTitle::Fortnite,
    };
    let secs: f64 = match take_value(&mut args, "--secs")? {
        Some(v) => parse("--secs", &v)?,
        None => 90.0,
    };
    let seed: u64 = match take_value(&mut args, "--seed")? {
        Some(v) => parse("--seed", &v)?,
        None => 7,
    };
    reject_extra(&args)?;

    let mut generator = SessionGenerator::new();
    let session = generator.generate(&SessionConfig {
        kind: TitleKind::Known(title),
        settings: StreamSettings::default_pc(),
        gameplay_secs: secs,
        fidelity: Fidelity::FullPackets,
        seed,
    });
    pcap::write_session_pcap(&out, &session.tuple, &session.packets)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} packets of a {} session ({secs:.0}s gameplay) to {out}",
        session.packets.len(),
        title.name()
    );
    Ok(())
}

fn cmd_analyze(mut args: Vec<String>) -> Result<(), String> {
    let bundle = bundle_from(&mut args)?;
    // Path comes from `--pcap <p>` (README `classify` spelling) or the
    // first positional argument (`analyze <p>`).
    let path = match take_value(&mut args, "--pcap")? {
        Some(p) => p,
        None => {
            if args.is_empty() {
                return Err("analyze requires a pcap path (positional or --pcap)".into());
            }
            args.remove(0)
        }
    };
    reject_extra(&args)?;

    let records = pcap::read_records(&path).map_err(|e| format!("reading {path}: {e}"))?;
    println!("read {} capture records from {path}", records.len());

    // A tap monitor demultiplexes the capture, so multi-flow captures (or
    // ones with background chatter) work the same as single-session files.
    let mut monitor = TapMonitor::new(&bundle, MonitorConfig::default());
    for r in &records {
        monitor.ingest_record(r);
    }
    let mut sessions = monitor.finish_all();
    sessions.sort_by_key(|m| m.started_at);
    if sessions.is_empty() {
        println!("no cloud gaming flows detected");
        return Ok(());
    }
    for m in &sessions {
        println!(
            "t+{:>3}s {} [{}] -> title {} ({:.0}%), {:.1} Mbps, QoE {}/{}{}",
            m.started_at / 1_000_000,
            m.tuple,
            m.platform,
            m.report.title.title.map(|t| t.name()).unwrap_or("unknown"),
            m.report.title.confidence * 100.0,
            m.report.mean_down_mbps,
            m.report.objective_qoe,
            m.report.effective_qoe,
            if m.confirmed { "" } else { " (unconfirmed)" }
        );
    }
    Ok(())
}

/// `fleet --replay`: drives a recorded feed through the live ingestion
/// path — paced replay, bounded queues, router, sharded monitor — on the
/// global registry/journal so `--metrics`, `--journal` and `--serve` see
/// the run.
fn cmd_fleet_replay(
    bundle: ModelBundle,
    source: String,
    mut args: Vec<String>,
) -> Result<(), String> {
    let pace: f64 = match take_value(&mut args, "--pace")? {
        Some(v) => parse("--pace", &v)?,
        None => 1.0,
    };
    let policy = match take_value(&mut args, "--backpressure")? {
        Some(v) => BackpressurePolicy::parse(&v)
            .ok_or_else(|| format!("--backpressure: {v:?} is not block|drop-oldest|drop-newest"))?,
        None => BackpressurePolicy::Block,
    };
    let mut ingest_cfg = IngestConfig::default();
    if let Some(v) = take_value(&mut args, "--queues")? {
        ingest_cfg.queues = parse("--queues", &v)?;
    }
    if let Some(v) = take_value(&mut args, "--queue-capacity")? {
        ingest_cfg.queue_capacity = parse("--queue-capacity", &v)?;
    }
    ingest_cfg.policy = policy;
    let shards: usize = match take_value(&mut args, "--shards")? {
        Some(v) => parse("--shards", &v)?,
        None => 4,
    };
    let mut merge_cfg = MergeConfig::default();
    if let Some(v) = take_value(&mut args, "--tolerance")? {
        merge_cfg.tolerance_us = parse("--tolerance", &v)?;
    }

    // Global registry + journal sink so --metrics/--journal/--serve all
    // observe the live run, merge counters included.
    let registry = obs::Registry::global();

    let sources: Vec<MergeSource> = if source == "merge" {
        let mut sources = Vec::new();
        while let Some(spec) = take_value(&mut args, "--input")? {
            let (path, offset) = parse_input_spec(&spec);
            let records = pcap::read_records(&path).map_err(|e| format!("reading {path}: {e}"))?;
            eprintln!(
                "read {} capture records from {path} (offset {offset:+} µs)",
                records.len()
            );
            sources.push(MergeSource::with_offset(path, offset, pcap_feed(&records)));
        }
        reject_extra(&args)?;
        if sources.is_empty() {
            return Err("--replay merge requires at least one --input <pcap[@offset_us]>".into());
        }
        sources
    } else if source == "sim" {
        let mut tap_cfg = TapFleetConfig {
            shards,
            ..Default::default()
        };
        if let Some(v) = take_value(&mut args, "--sessions")? {
            tap_cfg.n_sessions = parse("--sessions", &v)?;
        }
        if let Some(v) = take_value(&mut args, "--secs")? {
            tap_cfg.gameplay_secs = parse("--secs", &v)?;
        }
        let split: usize = match take_value(&mut args, "--split")? {
            Some(v) => parse("--split", &v)?,
            None => 1,
        };
        reject_extra(&args)?;
        eprintln!(
            "generating a {}-session tap-fleet feed ({}s gameplay each)...",
            tap_cfg.n_sessions, tap_cfg.gameplay_secs
        );
        let feed = build_tap_feed(&tap_cfg);
        if split > 1 {
            eprintln!("splitting the feed across {split} simulated taps...");
            split_round_robin(&feed, split)
                .into_iter()
                .enumerate()
                .map(|(i, part)| MergeSource::new(format!("tap{i}"), part))
                .collect()
        } else {
            vec![MergeSource::new("sim", feed)]
        }
    } else {
        reject_extra(&args)?;
        let records = pcap::read_records(&source).map_err(|e| format!("reading {source}: {e}"))?;
        eprintln!("read {} capture records from {source}", records.len());
        vec![MergeSource::new(source.clone(), pcap_feed(&records))]
    };

    let n_sources = sources.len();
    let (feed, merge_stats) = merge_sources(sources, &merge_cfg, Some(registry));
    if feed.is_empty() {
        return Err("replay source produced no records".into());
    }
    let span_secs = (feed.last().expect("non-empty").0 - feed[0].0) as f64 / 1e6;
    eprintln!(
        "replaying {} records from {n_sources} source(s) spanning {span_secs:.1}s at pace {pace} \
         ({policy} backpressure, {} queue(s) x {}, {shards} shard(s)); Ctrl-C drains gracefully",
        feed.len(),
        ingest_cfg.queues,
        ingest_cfg.queue_capacity,
    );
    if n_sources > 1 || merge_stats.late_total() > 0 {
        for (i, label) in merge_stats.labels.iter().enumerate() {
            eprintln!(
                "merge: {label}: {} record(s), {} late beyond {} µs tolerance",
                merge_stats.merged[i], merge_stats.late[i], merge_cfg.tolerance_us
            );
        }
    }
    // With a global trace collector installed (--trace-sample /
    // --trace-table), the replay closure below stamps the pre-pipeline
    // stages per record at release time. The merge already ran eagerly
    // above, but stamping the whole feed here would flood the span ring
    // ahead of the pump's first drain and drop every later stage's
    // spans at pace 0.
    let trace_sink = obs::trace::global_sink();
    let monitor = ShardedTapMonitor::new(
        Arc::new(bundle),
        ShardedMonitorConfig {
            shards,
            ..Default::default()
        },
    );
    let clock: gamescope::trace::SharedClock = Arc::new(RealClock::new());
    ingest_cfg.clock = Some(Arc::clone(&clock));
    ingest_cfg.trace = trace_sink.clone();
    let engine = IngestEngine::start(MonitorSink::new(monitor), ingest_cfg, registry);
    let producer = engine.producer();
    let metrics = engine.metrics().clone();
    let stats = replay(
        &feed,
        &*clock,
        &ReplayConfig { pace },
        Some(&metrics),
        Some(&sig::INTERRUPTED),
        |record| {
            if trace_sink.is_enabled() {
                let flow = record.1.flow_id();
                trace_sink.record(flow, 0, obs::TraceStage::Merge, record.0, 0);
                trace_sink.record(flow, 0, obs::TraceStage::Ingest, record.0, 0);
            }
            producer.push_record(record);
        },
    );
    drop(producer);
    if stats.cancelled {
        eprintln!(
            "interrupted after {} of {} records; draining queues...",
            stats.released,
            feed.len()
        );
    }
    let run = engine.shutdown();
    let (mut sessions, _stats) = run.output;
    sessions.sort_by_key(|m| m.started_at);

    for m in &sessions {
        println!(
            "t+{:>3}s {} [{}] -> title {} ({:.0}%), {:.1} Mbps, QoE {}/{}{}",
            m.started_at / 1_000_000,
            m.tuple,
            m.platform,
            m.report.title.title.map(|t| t.name()).unwrap_or("unknown"),
            m.report.title.confidence * 100.0,
            m.report.mean_down_mbps,
            m.report.objective_qoe,
            m.report.effective_qoe,
            if m.confirmed { "" } else { " (unconfirmed)" }
        );
    }
    println!(
        "replay: {} merged ({} late), {} released, {} enqueued, {} handed off, \
         {} dropped, {} sessions{}",
        merge_stats.merged_total(),
        merge_stats.late_total(),
        stats.released,
        run.enqueued,
        run.handed_off,
        run.dropped,
        sessions.len(),
        if stats.cancelled {
            " (interrupted, drained gracefully)"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_fleet(mut args: Vec<String>) -> Result<(), String> {
    let bundle = bundle_from(&mut args)?;
    if let Some(source) = take_value(&mut args, "--replay")? {
        return cmd_fleet_replay(bundle, source, args);
    }
    let mut cfg = FleetConfig::default();
    if let Some(v) = take_value(&mut args, "--sessions")? {
        cfg.n_sessions = parse("--sessions", &v)?;
    }
    if let Some(v) = take_value(&mut args, "--telemetry-every")? {
        cfg.telemetry_every = parse("--telemetry-every", &v)?;
    }
    if let Some(v) = take_value(&mut args, "--impair")? {
        let profile = ImpairmentProfile::by_name(&v).ok_or_else(|| {
            let names: Vec<&str> = ImpairmentProfile::ALL.iter().map(|p| p.name).collect();
            format!(
                "--impair: unknown profile {v:?}; available: {}",
                names.join(", ")
            )
        })?;
        eprintln!(
            "impairment: {} v{} — {} (severity {}/4)",
            profile.name, profile.version, profile.summary, profile.severity
        );
        cfg.impair_profile = Some(profile);
        // The legacy default impairs only a slice of the fleet; a named
        // profile describes the whole access network it models.
        cfg.impaired_fraction = 1.0;
    }
    let registry_dir = take_value(&mut args, "--registry")?;
    let promote_policy = match take_value(&mut args, "--promote")? {
        Some(v) => PromotePolicy::parse(&v)
            .ok_or_else(|| format!("--promote: {v:?} is not auto|manual"))?,
        None => PromotePolicy::Manual,
    };
    let force_retrain = take_flag(&mut args, "--retrain");
    reject_extra(&args)?;
    if registry_dir.is_none() && (force_retrain || promote_policy != PromotePolicy::Manual) {
        return Err("--retrain/--promote require --registry <dir>".into());
    }

    // With a registry, the fleet serves from a hot-swappable slot under a
    // lifecycle pilot (installed process-wide so /models can see it);
    // without one, the classic fixed-bundle path.
    let pilot: Option<Arc<LifecyclePilot>> = match &registry_dir {
        Some(dir) => {
            let pilot = LifecyclePilot::open(
                dir,
                bundle.clone(),
                0, // CLI bundles arrive trained; their dataset is unknown
                obs::Registry::global(),
                promote_policy,
            )
            .map_err(|e| format!("opening model registry {dir}: {e}"))?;
            let pilot = lifecycle::install_global(Arc::new(pilot));
            eprintln!(
                "lifecycle: serving model v{} from registry {dir} (promote: {})",
                pilot.live().version(),
                promote_policy.name()
            );
            Some(pilot)
        }
        None => None,
    };
    cfg.cancel = Some(Arc::new(std::sync::atomic::AtomicBool::new(false)));
    if let Some(flag) = &cfg.cancel {
        // Bridge the process-wide Ctrl-C flag into the fleet's cancel
        // flag from a watcher thread (the fleet only polls its own flag).
        let flag = Arc::clone(flag);
        std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                if sig::interrupted() {
                    flag.store(true, Ordering::Relaxed);
                    eprintln!("interrupt: finishing in-flight sessions, skipping the rest...");
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        });
    }

    eprintln!("simulating {} sessions...", cfg.n_sessions);
    let records = match &pilot {
        Some(pilot) => run_fleet_with_models(
            FleetModels {
                source: ModelSource::Live(pilot.live()),
                shadow: None,
            },
            &cfg,
        ),
        None => run_fleet(&bundle, &cfg),
    };

    // The lifecycle loop: a drift alarm (or --retrain) re-labels this
    // run's journaled decisions into a training set, fits a candidate,
    // rides it shadow on a fresh slice of traffic, and acts on the
    // verdict per --promote.
    if let Some(pilot) = &pilot {
        obs::drift::sync_global();
        let drift_alarms: Vec<String> = obs::drift::global()
            .map(|(_, engine)| {
                let report = obs::drift::lock_engine(engine).report();
                report.alarms().iter().map(|s| s.to_string()).collect()
            })
            .unwrap_or_default();
        if (force_retrain || !drift_alarms.is_empty()) && !sig::interrupted() {
            eprintln!(
                "lifecycle: {} — fitting a shadow candidate off-thread...",
                if drift_alarms.is_empty() {
                    "retrain requested".to_string()
                } else {
                    format!("drift alarm on {}", drift_alarms.join(", "))
                }
            );
            let handle = pilot.shadow_retrain(records.clone());
            match handle.join().expect("retrain thread panicked") {
                Ok(version) => {
                    let shadow = pilot.shadow().expect("candidate armed");
                    eprintln!(
                        "lifecycle: candidate v{version} registered; shadow-evaluating on fresh traffic..."
                    );
                    let eval_cfg = FleetConfig {
                        n_sessions: cfg.n_sessions.clamp(1, 120),
                        seed: cfg.seed ^ 0x5A5A,
                        telemetry_every: 0,
                        ..cfg.clone()
                    };
                    run_fleet_with_models(
                        FleetModels {
                            source: ModelSource::Live(pilot.live()),
                            shadow: Some(&shadow),
                        },
                        &eval_cfg,
                    );
                    if let Some((assessment, promoted)) = pilot.evaluate() {
                        eprintln!("lifecycle: verdict — {}", assessment.reason);
                        match promoted {
                            Some(v) => eprintln!(
                                "lifecycle: promoted v{v} live (previous version stays parked for instant rollback)"
                            ),
                            None => eprintln!(
                                "lifecycle: holding v{} live (candidate v{version} stays in the registry)",
                                pilot.live().version()
                            ),
                        }
                    }
                }
                Err(e) => eprintln!("lifecycle: retrain skipped: {e}"),
            }
        }
    }

    if let Some(flag) = &cfg.cancel {
        // Unblock the Ctrl-C watcher thread on the normal-completion path.
        flag.store(true, Ordering::Relaxed);
    }
    if records.len() < cfg.n_sessions {
        eprintln!(
            "interrupted: {} of {} sessions completed before the drain",
            records.len(),
            cfg.n_sessions
        );
    }
    let known: Vec<_> = records
        .iter()
        .filter(|r| r.truth_kind.known().is_some())
        .collect();
    let correct = known.iter().filter(|r| r.title_correct()).count();
    let qoe_count = |level: QoeLevel| {
        records
            .iter()
            .filter(|r| r.report.effective_qoe == level)
            .count()
    };
    println!(
        "fleet: {} sessions, title accuracy {}/{} on catalog titles",
        records.len(),
        correct,
        known.len()
    );
    println!(
        "effective QoE: {} good / {} medium / {} bad",
        qoe_count(QoeLevel::Good),
        qoe_count(QoeLevel::Medium),
        qoe_count(QoeLevel::Bad)
    );
    Ok(())
}

fn reject_extra(args: &[String]) -> Result<(), String> {
    if let Some(a) = args.first() {
        Err(format!("unexpected argument {a:?}"))
    } else {
        Ok(())
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_target = match take_value(&mut args, "--metrics") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let verbose_metrics = take_flag(&mut args, "--metrics-table");
    let journal_target = match take_value(&mut args, "--journal") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let verbose_journal = take_flag(&mut args, "--journal-table");
    let trace_sample = match take_value(&mut args, "--trace-sample") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let verbose_trace = take_flag(&mut args, "--trace-table");
    let serve_addr = match take_value(&mut args, "--serve") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let quality_flag = take_flag(&mut args, "--quality");
    let drift_window: Option<usize> = match take_value(&mut args, "--drift-window")
        .and_then(|v| v.map(|v| parse("--drift-window", &v)).transpose())
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let drift_reference: Option<usize> = match take_value(&mut args, "--drift-reference")
        .and_then(|v| v.map(|v| parse("--drift-reference", &v)).transpose())
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    // Ctrl-C from here on requests a graceful drain instead of killing
    // the process mid-run.
    sig::install();

    // Any flight-recorder option installs the process-wide journal before
    // the command runs, so every monitor/analyzer built from here on
    // records into it.
    let journal = if journal_target.is_some() || verbose_journal || serve_addr.is_some() {
        Some(obs::journal::install_global(obs::JournalConfig::default()))
    } else {
        None
    };
    // Span tracing is opt-in (--trace-sample / --trace-table): every
    // monitor, analyzer and ingest engine built after this records spans
    // for the sampled flows into the global trace ring.
    let trace = if trace_sample.is_some() || verbose_trace {
        let sample = match trace_sample.as_deref().map(parse_sample).transpose() {
            Ok(s) => s.unwrap_or(1),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        Some(obs::trace::install_global(obs::TraceConfig {
            // The CLI replay path stamps four transport spans per record
            // (merge/ingest/queue/router); an unpaced replay produces
            // them faster than a default-sized ring absorbs between
            // drains, so size the ring for burst headroom here.
            ring_capacity: 1 << 18,
            ..obs::TraceConfig::default().with_sample(sample)
        }))
    } else {
        None
    };
    // Quality/drift telemetry: --quality (or any live endpoint) installs
    // the process-wide quality hub and drift engine before the command
    // runs, so every analyzer and fleet truth-join from here on feeds
    // them. Off by default: without the sinks the hot path stays
    // zero-alloc and untouched.
    let quality_on = quality_flag || serve_addr.is_some();
    if quality_on {
        // Peeked here (cmd_fleet consumes and validates the flag) so the
        // global quality/drift families carry the profile label from the
        // moment they are installed — relabeling after install would
        // split every series.
        let impair_label: Option<&'static str> = args
            .iter()
            .position(|a| a == "--impair")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| ImpairmentProfile::by_name(v))
            .map(|p| p.name);
        obs::quality::install_global(obs::QualityConfig {
            profile: impair_label,
            ..obs::QualityConfig::default()
        });
        let mut drift_cfg = obs::DriftConfig {
            profile: impair_label,
            ..obs::DriftConfig::default()
        };
        if let Some(n) = drift_window {
            drift_cfg.window = n;
        }
        if let Some(n) = drift_reference {
            drift_cfg.reference_size = n;
        }
        obs::drift::install_global(drift_cfg);
    } else if drift_window.is_some() || drift_reference.is_some() {
        eprintln!(
            "note: --drift-window/--drift-reference have no effect without --quality or --serve"
        );
    }
    // An off-thread pump keeps the span ring drained for the duration of
    // the command — without it, the per-record transport stages fill the
    // ring long before exit and later stages count as drops. The short
    // interval matters at `--pace 0`: the replay can push the whole feed
    // between two slow ticks.
    let _trace_pump = trace.as_ref().map(|collector| {
        obs::TracePump::start(
            Arc::clone(collector),
            std::time::Duration::from_millis(25),
            obs::Registry::global(),
        )
    });
    // With a live endpoint, an off-thread pump keeps /journal fresh while
    // the command runs instead of draining only at scrape/exit time.
    let _pump = match (&journal, &serve_addr) {
        (Some(journal), Some(_)) => Some(obs::JournalPump::start(
            Arc::clone(journal),
            std::time::Duration::from_millis(200),
            obs::Registry::global(),
        )),
        _ => None,
    };
    // Held for the duration of the command: dropped (and thus shut down)
    // when `main` returns.
    let _server = match &serve_addr {
        Some(addr) => {
            let options = obs::ServeOptions {
                journal: journal.clone(),
                trace: trace.clone(),
                // Burn-rate evaluation on the wall clock backs /slo and
                // upgrades /healthz from the cumulative-counter fallback.
                slo: Some(Arc::new(obs::SloHub::real_time(obs::SloConfig::default()))),
                quality: obs::quality::global().map(|(_, hub)| Arc::clone(hub)),
                drift: obs::drift::global().map(|(_, engine)| Arc::clone(engine)),
                build: Some(Arc::new(obs::BuildInfo::register(obs::Registry::global()))),
                // Resolved per request: the lifecycle pilot installs
                // itself after the server is already up (fleet
                // --registry), and /models goes live the moment it does.
                models: Some(Arc::new(|| {
                    lifecycle::global().map(|pilot| pilot.models_json())
                })),
            };
            match obs::TelemetryServer::spawn_with(
                addr,
                || obs::Registry::global().snapshot(),
                options,
            ) {
                Ok(server) => {
                    eprintln!(
                        "telemetry: serving /metrics /healthz /slo /journal /quality /drift /models{} on http://{}",
                        if trace.is_some() { " /trace" } else { "" },
                        server.local_addr()
                    );
                    Some(server)
                }
                Err(e) => {
                    eprintln!("error: binding --serve {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "train" => cmd_train(args),
        "generate" => cmd_generate(args),
        "analyze" | "classify" => cmd_analyze(args),
        "fleet" => cmd_fleet(args),
        other => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    // Stop the pumps (final drain included) before snapshotting, so the
    // metrics, journal and trace output below see the complete streams.
    drop(_pump);
    drop(_trace_pump);
    // Final quality/drift drain so the snapshot below (and the exit
    // tables) reflect every labeled pair and score the run produced.
    obs::quality::sync_global();
    obs::drift::sync_global();
    let snapshot = obs::Registry::global().snapshot();
    if verbose_metrics {
        eprintln!("\n{}", metrics_table(&snapshot));
    }
    if let Some(target) = metrics_target {
        if let Err(e) = obs::export::dump(&snapshot, &target) {
            eprintln!("error: writing metrics to {target}: {e}");
            return ExitCode::FAILURE;
        }
        if target != "-" {
            eprintln!("metrics snapshot written to {target}");
        }
    }

    if let Some(trace) = &trace {
        let mut collector = obs::trace::lock_collector(trace);
        collector.drain();
        if verbose_trace {
            eprintln!("\n{}", trace_table(collector.timelines()));
        }
    }

    if let Some(journal) = &journal {
        let mut journal = obs::journal::lock_journal(journal);
        journal.drain();
        if verbose_journal {
            eprintln!("\n{}", journal_table(journal.timelines()));
        }
        if let Some(target) = journal_target {
            let body = journal.to_jsonl();
            if target == "-" {
                print!("{body}");
            } else {
                if let Err(e) = std::fs::write(&target, body) {
                    eprintln!("error: writing journal to {target}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("journal written to {target}");
            }
        }
    }

    if quality_on {
        if let Some((_, hub)) = obs::quality::global() {
            let report = obs::quality::lock_hub(hub).report();
            let table = quality_table(&report);
            if table.is_empty() {
                eprintln!("quality: no labeled pairs observed (offline fleet joins feed this)");
            } else {
                eprintln!("\n{table}");
            }
        }
        if let Some((_, engine)) = obs::drift::global() {
            let report = obs::drift::lock_engine(engine).report();
            let alarms = report.alarms();
            if alarms.is_empty() {
                eprintln!(
                    "drift: all models below the {:.2} alarm threshold",
                    report.alarm_threshold
                );
            } else {
                eprintln!(
                    "drift: ALARM — score over {:.2} for {}",
                    report.alarm_threshold,
                    alarms.join(", ")
                );
            }
        }
    }
    ExitCode::SUCCESS
}
