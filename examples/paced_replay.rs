//! Paced live-replay ingestion: the same subscriber fleet observed two
//! ways. First the offline batch path (every record folded in as fast as
//! the loop runs), then the live path — records released at their
//! recorded timestamps against a virtual clock, pushed through bounded
//! lock-free queues with backpressure, drained off-thread into the
//! sharded monitor, and shut down gracefully so every still-open flow
//! gets its final verdict. The two runs must agree byte-for-byte; the
//! queue accounting and pacing-lag histogram show what the transport did.
//!
//! ```text
//! cargo run --release --example paced_replay
//! ```

use std::sync::Arc;

use gamescope::deploy::{
    build_tap_feed, run_tap_fleet, run_tap_fleet_replay, TapFleetConfig, TapReplayOptions,
};
use gamescope::deploy::{train_bundle, TrainConfig};
use gamescope::ingest::ReplayConfig;
use gamescope::trace::clock::VirtualClock;

fn main() {
    println!("training models (quick config)...");
    let bundle = Arc::new(train_bundle(&TrainConfig::quick()));

    let cfg = TapFleetConfig {
        n_sessions: 4,
        gameplay_secs: 15.0,
        shards: 2,
        ..TapFleetConfig::default()
    };
    let feed = build_tap_feed(&cfg);
    let span_secs = feed
        .last()
        .map(|&(ts, _, _)| ts as f64 / 1e6)
        .unwrap_or(0.0);
    println!(
        "tap feed: {} records over {span_secs:.1}s of recorded time, {} sessions\n",
        feed.len(),
        cfg.n_sessions
    );

    // Reference: the offline batch path.
    let offline = run_tap_fleet(&bundle, &cfg);

    // Live path: replay at 4x the recorded rate on a virtual clock. The
    // pacer "sleeps" by advancing virtual time, so the whole recorded
    // span elapses instantly in wall time while the deadline arithmetic,
    // queue hand-off and graceful shutdown all run for real. Swap in
    // `RealClock::shared()` and this becomes an actual real-time replay.
    let clock = VirtualClock::new();
    let live = run_tap_fleet_replay(
        &bundle,
        &cfg,
        clock.shared(),
        TapReplayOptions {
            replay: ReplayConfig { pace: 4.0 },
            ..TapReplayOptions::default()
        },
    );

    println!("transport accounting (block policy — lossless by construction):");
    println!("  released by pacer : {}", live.replay.released);
    println!("  admitted to queues: {}", live.enqueued);
    println!("  handed to monitor : {}", live.handed_off);
    println!("  dropped           : {}", live.dropped);
    println!("  max pacing lag    : {}us\n", live.replay.max_lag_us);

    assert_eq!(live.dropped, 0);
    assert_eq!(live.enqueued, live.handed_off);

    println!("per-session verdicts through the live path:");
    for m in &live.fleet.sessions {
        println!(
            "  {} {:?} title={:?} objective={:?} effective={:?}",
            m.tuple,
            m.platform,
            m.report.title.title,
            m.report.objective_qoe,
            m.report.effective_qoe
        );
    }

    // The point of the exercise: the live path changes *when* records
    // arrive, never *what* the pipeline concludes from them.
    let render = |sessions: &[gamescope::pipeline::MonitoredSession]| -> Vec<String> {
        sessions.iter().map(|s| format!("{s:?}")).collect()
    };
    assert_eq!(render(&offline.sessions), render(&live.fleet.sessions));
    println!(
        "\noffline batch path and paced live replay agree on all {} reports.",
        offline.sessions.len()
    );

    // The ingest metric families a scraper would see for this run.
    let text = gamescope::obs::export::prometheus(&live.fleet.snapshot);
    println!("\ningest metric families:");
    for line in text
        .lines()
        .filter(|l| l.starts_with("cgc_ingest_") && !l.contains("_bucket"))
    {
        println!("  {line}");
    }
}
