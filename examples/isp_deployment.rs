//! ISP deployment in miniature: train, run a popularity-weighted fleet of
//! sessions through the pipeline in parallel, learn the demand calibration
//! from the first batch, and print the §5-style operator dashboards.
//!
//! ```text
//! cargo run --release --example isp_deployment
//! ```

use gamescope::deploy::aggregate::{
    bandwidth_by_title, calibrate, field_validation, qoe_by_title, stage_profiles_by_title,
};
use gamescope::deploy::report::metrics_table;
use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::deploy::{run_fleet, FleetConfig};
use gamescope::obs::Registry;

fn main() {
    println!("training models (quick config)...");
    let mut bundle = train_bundle(&TrainConfig::quick());

    let base = FleetConfig {
        n_sessions: 150,
        duration_scale: 0.08,
        // Heartbeat telemetry: a delta of the pipeline counters every 50
        // completed sessions, on stderr.
        telemetry_every: 50,
        ..Default::default()
    };

    // Calibration month: learn per-title demand from measurement.
    println!("calibration pass ({} sessions)...", base.n_sessions / 3);
    let calib = run_fleet(
        &bundle,
        &FleetConfig {
            n_sessions: base.n_sessions / 3,
            seed: base.seed ^ 1,
            uniform_titles: true,
            ..base.clone()
        },
    );
    bundle.calibration = calibrate(&calib);

    // Measurement period.
    println!("measurement pass ({} sessions)...\n", base.n_sessions);
    let records = run_fleet(&bundle, &base);

    let fv = field_validation(&records);
    println!(
        "title validation vs server logs: {:.1}% over clean catalog sessions",
        fv.overall_accuracy * 100.0
    );

    println!("\nper-title dashboards (titles with >= 3 sessions):");
    let stage = stage_profiles_by_title(&records);
    let bw = bandwidth_by_title(&records);
    let qoe = qoe_by_title(&records);
    for ((s, b), q) in stage.iter().zip(&bw).zip(&qoe) {
        if s.sessions < 3 {
            continue;
        }
        println!(
            "  {:<18} {:>3} sessions | active/passive/idle {:>4.0}/{:>4.0}/{:>4.0} s | median {:>5.1} Mbps | good QoE {:>5.1}% -> {:>5.1}% after calibration",
            s.context,
            s.sessions,
            s.active_min * 60.0,
            s.passive_min * 60.0,
            s.idle_min * 60.0,
            b.median_mbps,
            q.objective[2] * 100.0,
            q.effective[2] * 100.0,
        );
    }

    let impaired = records.iter().filter(|r| r.impaired).count();
    println!(
        "\n{} of {} sessions ran behind degraded paths; those are the ones a\nnetwork operator should chase — the calibration keeps the rest green.",
        impaired,
        records.len()
    );

    println!(
        "\ndeployment telemetry (global registry):\n{}",
        metrics_table(&Registry::global().snapshot())
    );
}
