//! Live classifier: drives the pipeline **packet by packet**, the way an
//! in-network tap observes traffic, printing context decisions the moment
//! they fire — the title when the 5-second window closes, stage changes as
//! their slots close, and the pattern decision when confidence crosses the
//! 75 % gate.
//!
//! ```text
//! cargo run --release --example live_classifier
//! ```

use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::domain::{GameTitle, Stage, StreamSettings};
use gamescope::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer};
use gamescope::sim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};

fn main() {
    println!("training models (quick config)...");
    let bundle = train_bundle(&TrainConfig::quick());

    let mut generator = SessionGenerator::new();
    let session = generator.generate(&SessionConfig {
        kind: TitleKind::Known(GameTitle::Overwatch2),
        settings: StreamSettings::default_pc(),
        gameplay_secs: 420.0,
        fidelity: Fidelity::FullPackets,
        seed: 7,
    });
    println!(
        "streaming {} packets (truth withheld from the pipeline)...\n",
        session.packets.len()
    );

    let mut analyzer =
        SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());

    // Feed every packet in arrival order, narrating state changes. A real
    // deployment would do exactly this from a capture socket.
    let mut last_stage: Option<Stage> = None;
    let mut title_announced = false;
    for pkt in &session.packets {
        analyzer.push_packet(pkt);
        let t_secs = pkt.ts / 1_000_000;
        if !title_announced {
            if let Some(pred) = analyzer.title_prediction() {
                println!(
                    "[t={t_secs}s] title process: {} (confidence {:.0}%)",
                    pred.title.map(|t| t.name()).unwrap_or("unknown"),
                    pred.confidence * 100.0
                );
                title_announced = true;
            }
        }
        if let Some(stage) = analyzer.current_stage() {
            if last_stage != Some(stage) {
                println!("[t={t_secs}s] stage -> {stage}");
                last_stage = Some(stage);
            }
        }
    }

    let report = analyzer.finish();
    match report.pattern {
        Some(d) => println!(
            "[t={}s] pattern process: {} (confidence {:.0}%)",
            d.decided_after_slots,
            d.pattern,
            d.confidence * 100.0
        ),
        None => {
            if let Some((p, c)) = report.final_pattern {
                println!(
                    "[end] pattern process (below threshold): {p} ({:.0}%)",
                    c * 100.0
                );
            }
        }
    }
    println!(
        "\nsession summary: {:.1} Mbps mean downstream, objective QoE {}, effective QoE {}",
        report.mean_down_mbps, report.objective_qoe, report.effective_qoe
    );
    println!(
        "ground truth was: {} ({})",
        session.kind,
        session.kind.pattern()
    );
}
