//! Effective QoE calibration on three telling cases:
//!
//! 1. a healthy Hearthstone session — objectively "bad" (low bitrate, low
//!    frame rate) but contextually fine;
//! 2. a healthy Cyberpunk session heavy on idle dialogue — objectively
//!    mediocre, contextually fine;
//! 3. a genuinely impaired Fortnite session — bad under both measures
//!    (context never excuses network damage).
//!
//! ```text
//! cargo run --release --example qoe_calibration
//! ```

use gamescope::deploy::aggregate::calibrate;
use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::deploy::{run_fleet, FleetConfig};
use gamescope::domain::{GameTitle, Resolution, StreamSettings};
use gamescope::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer};
use gamescope::sim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use gamescope::trace::impair::{Impairment, ImpairmentConfig};

fn main() {
    println!("training models (quick config)...");
    let mut bundle = train_bundle(&TrainConfig::quick());
    println!("learning demand calibration from a small fleet...");
    let calib = run_fleet(
        &bundle,
        &FleetConfig {
            n_sessions: 80,
            duration_scale: 0.06,
            // Uniform titles: even rare catalog entries get their demand
            // measured during calibration.
            uniform_titles: true,
            ..Default::default()
        },
    );
    bundle.calibration = calibrate(&calib);

    let mut generator = SessionGenerator::new();
    let mut run =
        |name: &str, title: GameTitle, settings: StreamSettings, impaired: bool, seed: u64| {
            let mut session = generator.generate(&SessionConfig {
                kind: TitleKind::Known(title),
                settings,
                gameplay_secs: 300.0,
                fidelity: Fidelity::LaunchOnly,
                seed,
            });
            let qoe = if impaired {
                let mut ch = Impairment::new(ImpairmentConfig::poor_network(seed));
                session.packets = ch.apply_all(&session.packets);
                let cap = (600_000.0 * (session.vol.width as f64 / 1e6)) as u64;
                for s in &mut session.vol.samples {
                    s.down_bytes = s.down_bytes.min(cap);
                }
                QoeInputs {
                    nominal_fps: settings.fps as f64,
                    latency_ms: 95.0,
                    loss_rate: 0.04,
                    settings_factor: settings.bitrate_factor(),
                    delivered_fps_ratio: 0.45,
                }
            } else {
                QoeInputs {
                    nominal_fps: settings.fps as f64,
                    latency_ms: 12.0,
                    loss_rate: 0.0005,
                    settings_factor: settings.bitrate_factor(),
                    delivered_fps_ratio: 1.0,
                }
            };
            let mut analyzer = SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), qoe);
            analyzer.analyze(&session.packets, &session.vol);
            let report = analyzer.finish();
            println!(
                "{name:<38} {:>5.1} Mbps | objective {:<6} | effective {}",
                report.mean_down_mbps,
                report.objective_qoe.to_string(),
                report.effective_qoe
            );
        };

    println!();
    let low = StreamSettings {
        resolution: Resolution::Hd,
        fps: 30,
        ..StreamSettings::default_pc()
    };
    run(
        "healthy Hearthstone (HD/30)",
        GameTitle::Hearthstone,
        low,
        false,
        1,
    );
    run(
        "healthy Cyberpunk 2077 (FHD/60)",
        GameTitle::Cyberpunk2077,
        StreamSettings::default_pc(),
        false,
        2,
    );
    run(
        "impaired Fortnite (FHD/60, lossy path)",
        GameTitle::Fortnite,
        StreamSettings::default_pc(),
        true,
        3,
    );
    println!(
        "\nthe calibration recovers the first two sessions as good experience\nwhile the genuinely damaged one stays flagged for troubleshooting."
    );
}
