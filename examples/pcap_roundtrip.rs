//! PCAP round-trip: write a full-fidelity session to a standard libpcap
//! file (openable in Wireshark), read it back, and classify the context
//! from the capture — the path a downstream user with real gateway
//! captures would run.
//!
//! ```text
//! cargo run --release --example pcap_roundtrip
//! ```

use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::domain::{GameTitle, StreamSettings};
use gamescope::pipeline::filter::{stats_of, CloudGamingFilter};
use gamescope::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer};
use gamescope::sim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use gamescope::trace::pcap;

fn main() {
    println!("training models (quick config)...");
    let bundle = train_bundle(&TrainConfig::quick());

    // Full packet fidelity: every gameplay frame and input packet is
    // materialized, so the pcap is a complete session capture.
    let mut generator = SessionGenerator::new();
    let session = generator.generate(&SessionConfig {
        kind: TitleKind::Known(GameTitle::GenshinImpact),
        settings: StreamSettings::default_pc(),
        gameplay_secs: 90.0,
        fidelity: Fidelity::FullPackets,
        seed: 99,
    });

    let path = std::env::temp_dir().join("gamescope_session.pcap");
    pcap::write_session_pcap(&path, &session.tuple, &session.packets).expect("write pcap");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {} packets ({:.1} MB) to {}",
        session.packets.len(),
        bytes as f64 / 1e6,
        path.display()
    );

    // Read the capture back, as if it came from a gateway tap.
    let records = pcap::read_records(&path).expect("read pcap");
    let packets = pcap::records_to_packets(&records, &session.tuple);
    println!("read back {} packets", packets.len());
    assert_eq!(packets.len(), session.packets.len());

    // The cloud-gaming filter should accept this flow.
    let filter = CloudGamingFilter::default();
    match filter.accept(&session.tuple, &stats_of(&packets)) {
        Some(platform) => println!("filter: accepted as {platform} streaming flow"),
        None => println!("filter: REJECTED (unexpected)"),
    }

    // Classify from the re-read capture.
    let mut analyzer =
        SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
    analyzer.analyze_packets(&packets);
    let report = analyzer.finish();
    println!(
        "classified title from the capture: {} (truth: {})",
        report.title.title.map(|t| t.name()).unwrap_or("unknown"),
        session.kind
    );
    println!(
        "mean downstream {:.1} Mbps over {} one-second slots",
        report.mean_down_mbps,
        report.stage_slots.len()
    );

    std::fs::remove_file(&path).ok();
}
