//! Tap monitor: the deployment front end. Three subscribers' sessions plus
//! unrelated traffic interleave on one simulated ISP link; the sharded
//! monitor hashes each flow to a worker shard, detects the gaming flows by
//! platform signature, demultiplexes them into per-flow analyzers, and
//! emits a context report per session as flows go idle.
//!
//! ```text
//! cargo run --release --example tap_monitor
//! ```

use std::sync::Arc;

use gamescope::deploy::report::metrics_table;
use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::domain::{GameTitle, StreamSettings};
use gamescope::pipeline::shard::{ShardedMonitorConfig, ShardedTapMonitor};
use gamescope::sim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
use gamescope::trace::packet::{Direction, FiveTuple};
use gamescope::trace::units::Micros;

fn main() {
    println!("training models (quick config)...");
    let bundle = Arc::new(train_bundle(&TrainConfig::quick()));

    // Three subscribers start sessions at different times.
    let mut generator = SessionGenerator::new();
    let mut mk = |title: GameTitle, seed: u64| -> Session {
        generator.generate(&SessionConfig {
            kind: TitleKind::Known(title),
            settings: StreamSettings::default_pc(),
            gameplay_secs: 90.0,
            fidelity: Fidelity::FullPackets,
            seed,
        })
    };
    let sessions = [
        (0u64, mk(GameTitle::Fortnite, 11)),
        (20_000_000, mk(GameTitle::Hearthstone, 22)),
        (45_000_000, mk(GameTitle::GenshinImpact, 33)),
    ];

    // Interleave everything on one tap, plus non-gaming chatter.
    let mut feed: Vec<(Micros, FiveTuple, u32)> = Vec::new();
    for (offset, s) in &sessions {
        for p in &s.packets {
            let tuple = match p.dir {
                Direction::Downstream => s.tuple,
                Direction::Upstream => s.tuple.reversed(),
            };
            feed.push((p.ts + offset, tuple, p.payload_len));
        }
    }
    let dns = FiveTuple::udp_v4([8, 8, 8, 8], 53, [100, 64, 1, 1], 40_000);
    for i in 0..5_000u64 {
        feed.push((i * 30_000, dns, 120));
    }
    feed.sort_by_key(|(ts, _, _)| *ts);
    println!("tap feed: {} packets from 4 flows\n", feed.len());

    let mut monitor =
        ShardedTapMonitor::new(Arc::clone(&bundle), ShardedMonitorConfig::with_shards(4));
    for (ts, tuple, len) in &feed {
        monitor.ingest(*ts, tuple, *len);
    }
    let live = monitor.stats().total();
    println!(
        "monitor: {} gaming flows tracked, {} non-gaming packets ignored",
        live.active_flows, live.ignored_packets
    );

    let (mut out, _stats) = monitor.finish_all();
    out.sort_by_key(|m| m.started_at);
    // The monitor records into the global registry; the snapshot spans all
    // four instrumented layers (trace, monitor/shard, pipeline, qoe).
    let snapshot = gamescope::obs::Registry::global().snapshot();
    println!("\nfront-end telemetry:\n{}", metrics_table(&snapshot));
    println!("\nper-session reports:");
    for m in &out {
        println!(
            "  t+{:>3}s {} [{}] -> title {} ({:.0}%), {:.1} Mbps, QoE {}/{}{}",
            m.started_at / 1_000_000,
            m.tuple,
            m.platform,
            m.report.title.title.map(|t| t.name()).unwrap_or("unknown"),
            m.report.title.confidence * 100.0,
            m.report.mean_down_mbps,
            m.report.objective_qoe,
            m.report.effective_qoe,
            if m.confirmed { "" } else { " (unconfirmed)" }
        );
    }
    println!("\nground truth: Fortnite @0s, Hearthstone @20s, Genshin Impact @45s");
}
