//! Quickstart: train the pipeline, generate one cloud gaming session, and
//! classify its full context — game title, player activity stages,
//! gameplay activity pattern and effective QoE.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::domain::{GameTitle, Stage, StreamSettings};
use gamescope::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer};
use gamescope::sim;
use gamescope::sim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use gamescope::trace::units::MICROS_PER_SEC;

fn main() {
    // 1. Train a model bundle. `TrainConfig::quick()` keeps this example
    //    under a minute; deployments use `TrainConfig::default()`.
    println!("training models (quick config)...");
    let bundle = train_bundle(&TrainConfig::quick());

    // 2. Generate a synthetic Fortnite session: 5 minutes of gameplay on a
    //    Windows PC at FHD/60.
    let mut generator = SessionGenerator::new();
    let session = generator.generate(&SessionConfig {
        kind: TitleKind::Known(GameTitle::Fortnite),
        settings: StreamSettings::default_pc(),
        gameplay_secs: 300.0,
        fidelity: Fidelity::LaunchOnly,
        seed: 2024,
    });
    println!(
        "generated session: {} | {:.1} minutes | {} launch packets",
        session.kind,
        session.duration() as f64 / 60e6,
        session.packets.len()
    );

    // 3. Run the real-time pipeline over the session.
    let mut analyzer =
        SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
    analyzer.analyze(&session.packets, &session.vol);
    let report = analyzer.finish();

    // 4. Inspect the report.
    match report.title.title {
        Some(t) => println!(
            "title: {t} (confidence {:.0}%)",
            report.title.confidence * 100.0
        ),
        None => println!(
            "title: unknown (confidence {:.0}%)",
            report.title.confidence * 100.0
        ),
    }
    match report.pattern {
        Some(d) => println!(
            "pattern: {} (confident after {} s)",
            d.pattern, d.decided_after_slots
        ),
        None => {
            if let Some((p, c)) = report.final_pattern {
                println!("pattern: {p} (best-effort, confidence {:.0}%)", c * 100.0);
            }
        }
    }
    for stage in [Stage::Active, Stage::Passive, Stage::Idle] {
        println!("time in {stage}: {:.0} s", report.stage_seconds(stage));
    }
    println!(
        "mean downstream {:.1} Mbps | objective QoE {} | effective QoE {}",
        report.mean_down_mbps, report.objective_qoe, report.effective_qoe
    );

    // 5. Sanity: the classified stages align with the generator's truth.
    let mut agree = 0usize;
    let mut total = 0usize;
    for (i, &pred) in report.stage_slots.iter().enumerate() {
        let mid = i as u64 * report.slot_width + MICROS_PER_SEC / 2;
        if let Some(truth) = session.timeline.stage_at(mid) {
            if truth.is_gameplay() {
                total += 1;
                agree += usize::from(pred == truth);
            }
        }
    }
    println!(
        "stage agreement with ground truth: {:.0}% over {} gameplay slots",
        100.0 * agree as f64 / total.max(1) as f64,
        total
    );
    let _ = sim::FULL_PAYLOAD; // the library exposes the 1432 B "full" size
}
