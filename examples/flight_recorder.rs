//! Flight recorder: per-flow decision timelines from the tap front end.
//! Two subscribers' sessions run through the sharded monitor with the
//! process-wide journal installed; afterwards the journal answers "why
//! did this flow get labeled the way it did" — as a human table, as
//! JSONL, and over the live HTTP telemetry endpoint that
//! `gamescope fleet --serve` exposes.
//!
//! ```text
//! cargo run --release --example flight_recorder
//! ```

use std::io::{Read, Write};
use std::sync::Arc;

use gamescope::deploy::report::journal_table;
use gamescope::deploy::train::{train_bundle, TrainConfig};
use gamescope::domain::{GameTitle, StreamSettings};
use gamescope::obs::journal::{install_global, lock_journal};
use gamescope::obs::{JournalConfig, Registry, TelemetryServer};
use gamescope::pipeline::shard::{ShardedMonitorConfig, ShardedTapMonitor};
use gamescope::sim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
use gamescope::trace::packet::Direction;

fn main() {
    // Install the journal before building the monitor: anything created
    // afterwards records its decisions here.
    let journal = install_global(JournalConfig::default());

    println!("training models (quick config)...");
    let bundle = Arc::new(train_bundle(&TrainConfig::quick()));

    let mut generator = SessionGenerator::new();
    let mut mk = |title: GameTitle, seed: u64| -> Session {
        generator.generate(&SessionConfig {
            kind: TitleKind::Known(title),
            settings: StreamSettings::default_pc(),
            gameplay_secs: 60.0,
            fidelity: Fidelity::FullPackets,
            seed,
        })
    };
    let sessions = [
        (0u64, mk(GameTitle::Fortnite, 11)),
        (15_000_000, mk(GameTitle::Hearthstone, 22)),
    ];

    let mut monitor =
        ShardedTapMonitor::new(Arc::clone(&bundle), ShardedMonitorConfig::with_shards(2));
    for (offset, s) in &sessions {
        for p in &s.packets {
            let tuple = match p.dir {
                Direction::Downstream => s.tuple,
                Direction::Upstream => s.tuple.reversed(),
            };
            monitor.ingest(p.ts + offset, &tuple, p.payload_len);
        }
    }
    let (out, _stats) = monitor.finish_all();
    println!(
        "monitored {} sessions; journal has their timelines:\n",
        out.len()
    );

    let mut j = lock_journal(&journal);
    j.drain();
    println!("{}", journal_table(j.timelines()));

    if let Some(tl) = j.timelines().first() {
        println!("same data as JSONL (first timeline):");
        println!("{}\n", gamescope::obs::journal::render_line(tl));
    }
    drop(j);

    // The live endpoint `gamescope fleet --serve <addr>` exposes, scraped
    // in-process: the three most recent events.
    let server = TelemetryServer::spawn(
        "127.0.0.1:0",
        || Registry::global().snapshot(),
        Some(journal),
    )
    .expect("bind telemetry endpoint");
    let addr = server.local_addr();
    println!("telemetry endpoint on http://{addr} — GET /journal?tail=3:");
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(stream, "GET /journal?tail=3 HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("");
    print!("{body}");
}
